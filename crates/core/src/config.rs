//! Solver configuration and the shared convergence criterion.

/// Configuration shared by every FBS solver in this crate, so that
/// serial/GPU/multicore runs are comparable iteration-for-iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolverConfig {
    /// Convergence tolerance, relative to the source-voltage magnitude:
    /// the solve stops when `max_p |V_p^{k} − V_p^{k−1}| ≤ tol_rel·|V₀|`.
    pub tol_rel: f64,
    /// Iteration cap; exceeding it returns `SolveStatus::MaxIterations`.
    pub max_iter: u32,
    /// Divergence cap, relative to the source-voltage magnitude: a
    /// residual above `divergence_cap·|V₀|` aborts the solve with
    /// `SolveStatus::Diverged`. A voltage *update* three orders of
    /// magnitude above the source voltage has left any physical operating
    /// regime, so the default of `1e3` never fires on a healthy solve.
    pub divergence_cap: f64,
    /// Number of consecutive residual-growth iterations tolerated before
    /// declaring `SolveStatus::Diverged`. FBS residuals on convergent
    /// cases decay (near-)monotonically; sustained growth means the fixed
    /// point is repelling.
    pub divergence_patience: u32,
    /// Recovery: a device-side voltage checkpoint is taken every this
    /// many iterations (used by `recovery::ResilientSolver`; plain
    /// `solve` calls never checkpoint).
    pub checkpoint_every: u32,
    /// Recovery: bound on rollback/retry attempts before the resilient
    /// supervisor degrades to the next backend in the chain.
    pub max_recoveries: u32,
}

impl SolverConfig {
    /// The tolerance used by the paper-reproduction experiments.
    pub const DEFAULT_TOL: f64 = 1e-6;
    /// Default divergence cap (relative to `|V₀|`).
    pub const DEFAULT_DIVERGENCE_CAP: f64 = 1e3;
    /// Default growth patience before declaring divergence.
    pub const DEFAULT_DIVERGENCE_PATIENCE: u32 = 8;
    /// Default checkpoint cadence, iterations. Healthy FBS solves
    /// converge in ~10–20 iterations, so every 4 bounds replay work to
    /// at most 4 sweeps while keeping checkpoint transfers rare.
    pub const DEFAULT_CHECKPOINT_EVERY: u32 = 4;
    /// Default rollback/retry budget per backend.
    pub const DEFAULT_MAX_RECOVERIES: u32 = 8;

    /// Creates a config with the given relative tolerance and cap, using
    /// the default divergence thresholds.
    pub fn new(tol_rel: f64, max_iter: u32) -> Self {
        assert!(tol_rel > 0.0 && tol_rel.is_finite(), "tolerance must be positive");
        assert!(max_iter >= 1, "need at least one iteration");
        SolverConfig {
            tol_rel,
            max_iter,
            divergence_cap: Self::DEFAULT_DIVERGENCE_CAP,
            divergence_patience: Self::DEFAULT_DIVERGENCE_PATIENCE,
            checkpoint_every: Self::DEFAULT_CHECKPOINT_EVERY,
            max_recoveries: Self::DEFAULT_MAX_RECOVERIES,
        }
    }

    /// Overrides the divergence thresholds. The cap must exceed the
    /// tolerance or every solve would abort before converging.
    pub fn with_divergence(mut self, cap: f64, patience: u32) -> Self {
        assert!(cap.is_finite() && cap > self.tol_rel, "cap must be finite and above tol_rel");
        assert!(patience >= 1, "need at least one growth iteration");
        self.divergence_cap = cap;
        self.divergence_patience = patience;
        self
    }

    /// Overrides the recovery policy: checkpoint cadence and the
    /// rollback/retry budget used by `recovery::ResilientSolver`.
    pub fn with_recovery(mut self, checkpoint_every: u32, max_recoveries: u32) -> Self {
        assert!(checkpoint_every >= 1, "need a nonzero checkpoint cadence");
        self.checkpoint_every = checkpoint_every;
        self.max_recoveries = max_recoveries;
        self
    }

    /// Absolute voltage tolerance for a given source magnitude, volts.
    pub fn tol_volts(&self, source_mag: f64) -> f64 {
        self.tol_rel * source_mag
    }

    /// Absolute divergence cap for a given source magnitude, volts.
    pub fn divergence_cap_volts(&self, source_mag: f64) -> f64 {
        self.divergence_cap * source_mag
    }
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            tol_rel: Self::DEFAULT_TOL,
            max_iter: 100,
            divergence_cap: Self::DEFAULT_DIVERGENCE_CAP,
            divergence_patience: Self::DEFAULT_DIVERGENCE_PATIENCE,
            checkpoint_every: Self::DEFAULT_CHECKPOINT_EVERY,
            max_recoveries: Self::DEFAULT_MAX_RECOVERIES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_papers_setting() {
        let c = SolverConfig::default();
        assert_eq!(c.tol_rel, 1e-6);
        assert_eq!(c.max_iter, 100);
        assert_eq!(c.tol_volts(7200.0), 7200.0 * 1e-6);
        assert_eq!(c.divergence_cap, 1e3);
        assert_eq!(c.divergence_patience, 8);
        assert_eq!(c.divergence_cap_volts(100.0), 1e5);
    }

    #[test]
    fn with_divergence_overrides_thresholds() {
        let c = SolverConfig::new(1e-6, 50).with_divergence(10.0, 3);
        assert_eq!(c.divergence_cap, 10.0);
        assert_eq!(c.divergence_patience, 3);
        assert_eq!(c.tol_rel, 1e-6, "tolerance untouched");
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn cap_below_tolerance_rejected() {
        SolverConfig::new(1e-2, 50).with_divergence(1e-3, 3);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn zero_tolerance_rejected() {
        SolverConfig::new(0.0, 10);
    }

    #[test]
    #[should_panic(expected = "iteration")]
    fn zero_iterations_rejected() {
        SolverConfig::new(1e-6, 0);
    }
}
