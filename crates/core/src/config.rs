//! Solver configuration and the shared convergence criterion.

use std::fmt;

/// Why a [`SolverConfig`] failed validation.
///
/// The constructors (`new`, `with_divergence`, `with_recovery`,
/// `with_deadline`) assert these invariants eagerly, but every field is
/// public — a config assembled or mutated directly can smuggle in values
/// the asserts never saw (`max_iter = 0` historically returned
/// `MaxIterations` with an uninitialized residual). All six solvers now
/// call [`SolverConfig::validate`] on entry and report
/// `SolveStatus::InvalidConfig` instead of iterating on garbage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `max_iter` is zero — the loop would exit before its first sweep.
    ZeroMaxIter,
    /// `tol_rel` is non-positive, NaN or infinite.
    BadTolerance,
    /// `divergence_cap` is non-finite or not above `tol_rel`, or
    /// `divergence_patience` is zero.
    BadDivergence,
    /// `checkpoint_every` is zero — checkpoints would never be taken but
    /// the cadence arithmetic divides by it.
    ZeroCheckpointEvery,
    /// `deadline_us` is present but non-positive, NaN or infinite.
    BadDeadline,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroMaxIter => write!(f, "max_iter must be at least 1"),
            ConfigError::BadTolerance => write!(f, "tol_rel must be positive and finite"),
            ConfigError::BadDivergence => {
                write!(f, "divergence_cap must be finite and above tol_rel, patience nonzero")
            }
            ConfigError::ZeroCheckpointEvery => write!(f, "checkpoint_every must be at least 1"),
            ConfigError::BadDeadline => write!(f, "deadline_us must be positive and finite"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration shared by every FBS solver in this crate, so that
/// serial/GPU/multicore runs are comparable iteration-for-iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolverConfig {
    /// Convergence tolerance, relative to the source-voltage magnitude:
    /// the solve stops when `max_p |V_p^{k} − V_p^{k−1}| ≤ tol_rel·|V₀|`.
    pub tol_rel: f64,
    /// Iteration cap; exceeding it returns `SolveStatus::MaxIterations`.
    pub max_iter: u32,
    /// Divergence cap, relative to the source-voltage magnitude: a
    /// residual above `divergence_cap·|V₀|` aborts the solve with
    /// `SolveStatus::Diverged`. A voltage *update* three orders of
    /// magnitude above the source voltage has left any physical operating
    /// regime, so the default of `1e3` never fires on a healthy solve.
    pub divergence_cap: f64,
    /// Number of consecutive residual-growth iterations tolerated before
    /// declaring `SolveStatus::Diverged`. FBS residuals on convergent
    /// cases decay (near-)monotonically; sustained growth means the fixed
    /// point is repelling.
    pub divergence_patience: u32,
    /// Recovery: a device-side voltage checkpoint is taken every this
    /// many iterations (used by `recovery::ResilientSolver`; plain
    /// `solve` calls never checkpoint).
    pub checkpoint_every: u32,
    /// Recovery: bound on rollback/retry attempts before the resilient
    /// supervisor degrades to the next backend in the chain.
    pub max_recoveries: u32,
    /// Modeled-time budget for the solve, µs. When set, every solver
    /// checks its accumulated modeled phase time after each iteration
    /// and aborts with `SolveStatus::DeadlineExceeded` once the budget
    /// is spent. `None` (the default) means unbounded.
    pub deadline_us: Option<f64>,
    /// Warm start: seed the voltage iterate from a caller-supplied
    /// base-case profile instead of the flat source-voltage start.
    /// The profile itself is passed alongside the config (the
    /// `solve_warm` entry points and the contingency screener); this
    /// flag records intent so batched paths can decide per-run whether
    /// to upload a seed profile. Ignored by entry points that take no
    /// profile.
    pub warm_start: bool,
}

impl SolverConfig {
    /// The tolerance used by the paper-reproduction experiments.
    pub const DEFAULT_TOL: f64 = 1e-6;
    /// Default divergence cap (relative to `|V₀|`).
    pub const DEFAULT_DIVERGENCE_CAP: f64 = 1e3;
    /// Default growth patience before declaring divergence.
    pub const DEFAULT_DIVERGENCE_PATIENCE: u32 = 8;
    /// Default checkpoint cadence, iterations. Healthy FBS solves
    /// converge in ~10–20 iterations, so every 4 bounds replay work to
    /// at most 4 sweeps while keeping checkpoint transfers rare.
    pub const DEFAULT_CHECKPOINT_EVERY: u32 = 4;
    /// Default rollback/retry budget per backend.
    pub const DEFAULT_MAX_RECOVERIES: u32 = 8;

    /// Creates a config with the given relative tolerance and cap, using
    /// the default divergence thresholds.
    pub fn new(tol_rel: f64, max_iter: u32) -> Self {
        assert!(tol_rel > 0.0 && tol_rel.is_finite(), "tolerance must be positive");
        assert!(max_iter >= 1, "need at least one iteration");
        SolverConfig {
            tol_rel,
            max_iter,
            divergence_cap: Self::DEFAULT_DIVERGENCE_CAP,
            divergence_patience: Self::DEFAULT_DIVERGENCE_PATIENCE,
            checkpoint_every: Self::DEFAULT_CHECKPOINT_EVERY,
            max_recoveries: Self::DEFAULT_MAX_RECOVERIES,
            deadline_us: None,
            warm_start: false,
        }
    }

    /// Overrides the divergence thresholds. The cap must exceed the
    /// tolerance or every solve would abort before converging.
    pub fn with_divergence(mut self, cap: f64, patience: u32) -> Self {
        assert!(cap.is_finite() && cap > self.tol_rel, "cap must be finite and above tol_rel");
        assert!(patience >= 1, "need at least one growth iteration");
        self.divergence_cap = cap;
        self.divergence_patience = patience;
        self
    }

    /// Overrides the recovery policy: checkpoint cadence and the
    /// rollback/retry budget used by `recovery::ResilientSolver`.
    pub fn with_recovery(mut self, checkpoint_every: u32, max_recoveries: u32) -> Self {
        assert!(checkpoint_every >= 1, "need a nonzero checkpoint cadence");
        self.checkpoint_every = checkpoint_every;
        self.max_recoveries = max_recoveries;
        self
    }

    /// Sets a modeled-time deadline for the solve, µs. The budget must
    /// be positive and finite.
    pub fn with_deadline(mut self, deadline_us: f64) -> Self {
        assert!(
            deadline_us > 0.0 && deadline_us.is_finite(),
            "deadline must be positive and finite"
        );
        self.deadline_us = Some(deadline_us);
        self
    }

    /// Requests a warm start: solvers with a `solve_warm` entry point
    /// seed the iterate from the supplied base-case profile, and the
    /// contingency screener solves the base case once and reuses it
    /// across every contingency.
    pub fn with_warm_start(mut self) -> Self {
        self.warm_start = true;
        self
    }

    /// Checks every invariant the builder asserts, for configs that were
    /// assembled or mutated through the public fields. Solvers call this
    /// on entry; an `Err` becomes `SolveStatus::InvalidConfig`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.tol_rel > 0.0 && self.tol_rel.is_finite()) {
            return Err(ConfigError::BadTolerance);
        }
        if self.max_iter == 0 {
            return Err(ConfigError::ZeroMaxIter);
        }
        if !(self.divergence_cap.is_finite() && self.divergence_cap > self.tol_rel)
            || self.divergence_patience == 0
        {
            return Err(ConfigError::BadDivergence);
        }
        if self.checkpoint_every == 0 {
            return Err(ConfigError::ZeroCheckpointEvery);
        }
        if let Some(d) = self.deadline_us {
            if !(d > 0.0 && d.is_finite()) {
                return Err(ConfigError::BadDeadline);
            }
        }
        Ok(())
    }

    /// Absolute voltage tolerance for a given source magnitude, volts.
    pub fn tol_volts(&self, source_mag: f64) -> f64 {
        self.tol_rel * source_mag
    }

    /// Absolute divergence cap for a given source magnitude, volts.
    pub fn divergence_cap_volts(&self, source_mag: f64) -> f64 {
        self.divergence_cap * source_mag
    }
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            tol_rel: Self::DEFAULT_TOL,
            max_iter: 100,
            divergence_cap: Self::DEFAULT_DIVERGENCE_CAP,
            divergence_patience: Self::DEFAULT_DIVERGENCE_PATIENCE,
            checkpoint_every: Self::DEFAULT_CHECKPOINT_EVERY,
            max_recoveries: Self::DEFAULT_MAX_RECOVERIES,
            deadline_us: None,
            warm_start: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_papers_setting() {
        let c = SolverConfig::default();
        assert_eq!(c.tol_rel, 1e-6);
        assert_eq!(c.max_iter, 100);
        assert_eq!(c.tol_volts(7200.0), 7200.0 * 1e-6);
        assert_eq!(c.divergence_cap, 1e3);
        assert_eq!(c.divergence_patience, 8);
        assert_eq!(c.divergence_cap_volts(100.0), 1e5);
        assert!(!c.warm_start, "cold start by default");
    }

    #[test]
    fn warm_start_is_an_opt_in_flag() {
        let c = SolverConfig::default().with_warm_start();
        assert!(c.warm_start);
        assert_eq!(c.validate(), Ok(()), "warm start does not perturb validation");
        // The flag composes with the other builders.
        let c = SolverConfig::new(1e-8, 40).with_warm_start().with_deadline(1e6);
        assert!(c.warm_start && c.deadline_us == Some(1e6));
    }

    #[test]
    fn with_divergence_overrides_thresholds() {
        let c = SolverConfig::new(1e-6, 50).with_divergence(10.0, 3);
        assert_eq!(c.divergence_cap, 10.0);
        assert_eq!(c.divergence_patience, 3);
        assert_eq!(c.tol_rel, 1e-6, "tolerance untouched");
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn cap_below_tolerance_rejected() {
        SolverConfig::new(1e-2, 50).with_divergence(1e-3, 3);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn zero_tolerance_rejected() {
        SolverConfig::new(0.0, 10);
    }

    #[test]
    #[should_panic(expected = "iteration")]
    fn zero_iterations_rejected() {
        SolverConfig::new(1e-6, 0);
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn non_positive_deadline_rejected() {
        SolverConfig::default().with_deadline(0.0);
    }

    #[test]
    fn validate_catches_field_poked_footguns() {
        assert_eq!(SolverConfig::default().validate(), Ok(()));
        assert_eq!(
            SolverConfig::default().with_deadline(500.0).validate(),
            Ok(()),
            "a finite positive deadline is valid"
        );

        let mut c = SolverConfig::default();
        c.max_iter = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroMaxIter));

        let mut c = SolverConfig::default();
        c.tol_rel = f64::NAN;
        assert_eq!(c.validate(), Err(ConfigError::BadTolerance));

        let mut c = SolverConfig::default();
        c.divergence_cap = f64::INFINITY;
        assert_eq!(c.validate(), Err(ConfigError::BadDivergence));
        c.divergence_cap = SolverConfig::DEFAULT_DIVERGENCE_CAP;
        c.divergence_patience = 0;
        assert_eq!(c.validate(), Err(ConfigError::BadDivergence));

        let mut c = SolverConfig::default();
        c.checkpoint_every = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroCheckpointEvery));

        let mut c = SolverConfig::default();
        c.deadline_us = Some(-1.0);
        assert_eq!(c.validate(), Err(ConfigError::BadDeadline));
    }
}
