//! Solver configuration and the shared convergence criterion.

/// Configuration shared by every FBS solver in this crate, so that
/// serial/GPU/multicore runs are comparable iteration-for-iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolverConfig {
    /// Convergence tolerance, relative to the source-voltage magnitude:
    /// the solve stops when `max_p |V_p^{k} − V_p^{k−1}| ≤ tol_rel·|V₀|`.
    pub tol_rel: f64,
    /// Iteration cap; exceeding it returns `converged = false`.
    pub max_iter: u32,
}

impl SolverConfig {
    /// The tolerance used by the paper-reproduction experiments.
    pub const DEFAULT_TOL: f64 = 1e-6;

    /// Creates a config with the given relative tolerance and cap.
    pub fn new(tol_rel: f64, max_iter: u32) -> Self {
        assert!(tol_rel > 0.0 && tol_rel.is_finite(), "tolerance must be positive");
        assert!(max_iter >= 1, "need at least one iteration");
        SolverConfig { tol_rel, max_iter }
    }

    /// Absolute voltage tolerance for a given source magnitude, volts.
    pub fn tol_volts(&self, source_mag: f64) -> f64 {
        self.tol_rel * source_mag
    }
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig { tol_rel: Self::DEFAULT_TOL, max_iter: 100 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_papers_setting() {
        let c = SolverConfig::default();
        assert_eq!(c.tol_rel, 1e-6);
        assert_eq!(c.max_iter, 100);
        assert_eq!(c.tol_volts(7200.0), 7200.0 * 1e-6);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn zero_tolerance_rejected() {
        SolverConfig::new(0.0, 10);
    }

    #[test]
    #[should_panic(expected = "iteration")]
    fn zero_iterations_rejected() {
        SolverConfig::new(1e-6, 0);
    }
}
