//! Position-space solver arrays.
//!
//! Every solver in this crate — serial included, for a fair comparison —
//! works on the same flat arrays derived once per topology: bus loads and
//! branch impedances permuted into [`powergrid::LevelOrder`] position
//! space, plus the integer topology arrays the kernels index with. This
//! mirrors the paper's host-side preprocessing step (building the
//! device-friendly tree representation before uploading it).

use numc::Complex;
use powergrid::{LevelOrder, RadialNetwork};

/// Flat, level-ordered arrays describing one power-flow problem.
#[derive(Clone, Debug)]
pub struct SolverArrays {
    /// The level-order permutation and ranges.
    pub levels: LevelOrder,
    /// Source (slack) voltage phasor, volts.
    pub source: Complex,
    /// Per-position constant-power load, VA.
    pub s: Vec<Complex>,
    /// Per-position impedance of the branch feeding the position from its
    /// parent, ohms (zero at the root, which has no feeding branch).
    pub z: Vec<Complex>,
    /// Parent position per position ([`powergrid::NO_PARENT`] at the root).
    pub parent_pos: Vec<u32>,
    /// Children position ranges (see [`LevelOrder`]).
    pub child_lo: Vec<u32>,
    /// One past the last child position.
    pub child_hi: Vec<u32>,
    /// Segmented-scan head flags per position.
    pub head_flags: Vec<u32>,
    /// Gather index for the scan-based backward sweep: for a position
    /// with children, the position of its *last* child (whose inclusive
    /// segmented scan value is the segment total); 0 for leaves (unused —
    /// guarded by `child_lo < child_hi`).
    pub seg_last: Vec<u32>,
}

impl SolverArrays {
    /// Builds the arrays for a network.
    pub fn new(net: &RadialNetwork) -> Self {
        let levels = LevelOrder::new(net);
        let n = levels.len();

        let s: Vec<Complex> = levels.order.iter().map(|&b| net.buses()[b as usize].load).collect();
        let z: Vec<Complex> = levels
            .order
            .iter()
            .map(|&b| net.parent_branch(b as usize).map_or(Complex::ZERO, |br| br.z))
            .collect();
        let seg_last: Vec<u32> = (0..n)
            .map(|p| if levels.child_lo[p] < levels.child_hi[p] { levels.child_hi[p] - 1 } else { 0 })
            .collect();

        SolverArrays {
            source: net.source_voltage(),
            s,
            z,
            parent_pos: levels.parent_pos.clone(),
            child_lo: levels.child_lo.clone(),
            child_hi: levels.child_hi.clone(),
            head_flags: levels.head_flags.clone(),
            seg_last,
            levels,
        }
    }

    /// Bus count.
    pub fn len(&self) -> usize {
        self.s.len()
    }

    /// Never empty after network validation.
    pub fn is_empty(&self) -> bool {
        self.s.is_empty()
    }

    /// Number of BFS levels.
    pub fn num_levels(&self) -> usize {
        self.levels.num_levels()
    }

    /// True if position `p` has children.
    #[inline]
    pub fn has_children(&self, p: usize) -> bool {
        self.child_lo[p] < self.child_hi[p]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numc::c;
    use powergrid::{NetworkBuilder, NO_PARENT};

    fn small() -> RadialNetwork {
        // 0 → {1, 2}; 1 → {3}
        let mut b = NetworkBuilder::new(c(100.0, 0.0));
        b.add_bus(Complex::ZERO);
        b.add_bus(c(10.0, 5.0));
        b.add_bus(c(20.0, 8.0));
        b.add_bus(c(30.0, 12.0));
        b.connect(0, 1, c(0.5, 0.25));
        b.connect(0, 2, c(0.6, 0.30));
        b.connect(1, 3, c(0.7, 0.35));
        b.build().unwrap()
    }

    #[test]
    fn arrays_are_level_ordered() {
        let a = SolverArrays::new(&small());
        assert_eq!(a.len(), 4);
        assert_eq!(a.num_levels(), 3);
        assert_eq!(a.source, c(100.0, 0.0));
        // Positions: 0, then {1, 2}, then {3}.
        assert_eq!(a.s[0], Complex::ZERO);
        assert_eq!(a.s[1], c(10.0, 5.0));
        assert_eq!(a.s[3], c(30.0, 12.0));
        assert_eq!(a.z[0], Complex::ZERO);
        assert_eq!(a.z[1], c(0.5, 0.25));
        assert_eq!(a.z[3], c(0.7, 0.35));
        assert_eq!(a.parent_pos[0], NO_PARENT);
        assert_eq!(a.parent_pos[3], 1);
    }

    #[test]
    fn seg_last_points_at_last_child() {
        let a = SolverArrays::new(&small());
        assert!(a.has_children(0));
        assert_eq!(a.seg_last[0], 2); // children of root: positions 1..=2
        assert!(a.has_children(1));
        assert_eq!(a.seg_last[1], 3);
        assert!(!a.has_children(2));
        assert!(!a.has_children(3));
    }
}
