//! The serial CPU solver — the paper's baseline comparator.
//!
//! A cache-friendly, deliberately *non-pessimised* sequential
//! forward-backward sweep over the level-ordered arrays:
//!
//! 1. **Injection**: `I_p = conj(S_p / V_p)` for every bus.
//! 2. **Backward sweep** (positions high→low, i.e. leaves→root):
//!    `J_p = I_p + Σ_{c ∈ children(p)} J_c` — one pass, children already
//!    final because they sit at higher positions.
//! 3. **Forward sweep** (positions low→high, root→leaves):
//!    `V_p = V_{parent(p)} − Z_p·J_p`, using this iteration's fresh
//!    upstream voltages (ladder convention); the convergence ∞-norm is
//!    folded into the same pass.
//!
//! Modeled time comes from the [`HostProps`] roofline applied to the
//! per-phase flop/byte tallies below; wall-clock is also recorded.

use std::time::Instant;

use numc::Complex;
use powergrid::RadialNetwork;
use primitives::ops::{MaxAbsF64, ScanOp};
use simt::HostProps;

use telemetry::Recorder;

use crate::arrays::SolverArrays;
use crate::config::SolverConfig;
use crate::obs::Obs;
use crate::report::{PhaseTimes, SolveResult, Timing};
use crate::status::{ConvergenceMonitor, SolveStatus};

/// Modeled flops per bus for the injection step (complex divide + conj).
const INJ_FLOPS: u64 = Complex::DIV_FLOPS + 1;
/// Modeled bytes per bus for injection (read S, V; write I).
const INJ_BYTES: u64 = 48;
/// Modeled flops per *child edge* in the backward sweep (complex add).
const BWD_FLOPS_PER_EDGE: u64 = Complex::ADD_FLOPS;
/// Modeled bytes per bus for the backward sweep (read I, child J; write J).
const BWD_BYTES: u64 = 48;
/// Modeled flops per non-root bus for the forward sweep
/// (complex mul + sub + |ΔV| magnitude).
const FWD_FLOPS: u64 = Complex::MUL_FLOPS + Complex::ADD_FLOPS + 4;
/// Modeled bytes per non-root bus for the forward sweep
/// (read V_parent, Z, J, V_old; write V).
const FWD_BYTES: u64 = 80;

/// The serial forward-backward sweep solver.
#[derive(Clone, Debug, Default)]
pub struct SerialSolver {
    host: HostProps,
    recorder: Option<Recorder>,
}

impl SerialSolver {
    /// Creates a solver modeled on the given host CPU.
    pub fn new(host: HostProps) -> Self {
        SerialSolver { host, recorder: None }
    }

    /// Attaches a telemetry recorder: per-iteration/per-phase spans and
    /// residual samples are recorded into it during every solve.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// The modeled host description.
    pub fn host(&self) -> &HostProps {
        &self.host
    }

    /// Solves a network from scratch (builds the level-order arrays,
    /// charging them to the setup phase).
    pub fn solve(&self, net: &RadialNetwork, cfg: &SolverConfig) -> SolveResult {
        let t0 = Instant::now();
        let arrays = SolverArrays::new(net);
        let setup_wall = t0.elapsed().as_secs_f64() * 1e6;
        let mut res = self.solve_arrays(&arrays, cfg);
        res.timing.wall_us += setup_wall;
        res
    }

    /// Solves with pre-built arrays (the repeated-solve path: topology
    /// preprocessing is charged to setup via a byte-touch model).
    pub fn solve_arrays(&self, a: &SolverArrays, cfg: &SolverConfig) -> SolveResult {
        self.solve_warm(a, cfg, None)
    }

    /// Solves starting from a previous solution instead of the flat
    /// start (`v_init` is indexed by *bus id*). Warm starts cut
    /// iterations in time-series runs where consecutive loadings are
    /// close.
    pub fn solve_warm(
        &self,
        a: &SolverArrays,
        cfg: &SolverConfig,
        v_init: Option<&[Complex]>,
    ) -> SolveResult {
        let wall0 = Instant::now();
        let n = a.len();
        let v0 = a.source;
        if cfg.validate().is_err() {
            return crate::report::invalid_config_result(n, v0);
        }
        let mut monitor = ConvergenceMonitor::new(cfg, v0.abs());
        // Resident state cycled every iteration: S, Z, V, I, J (16 B
        // complex each) plus the integer topology arrays (~32 B/bus).
        let working_set = 112 * n as u64;

        let mut v = match v_init {
            Some(init) => {
                assert_eq!(init.len(), n, "warm start needs one voltage per bus");
                a.levels.permute(init)
            }
            None => vec![v0; n],
        };
        let mut i_inj = vec![Complex::ZERO; n];
        let mut j = vec![Complex::ZERO; n];

        // Setup model: building the permutation + arrays touches every
        // per-bus record a handful of times; ~128 bytes per bus, no flops.
        let mut phases = PhaseTimes { setup_us: self.host.region_time_us(0, 128 * n as u64), ..Default::default() };

        let mut iterations = 0;
        let mut residual = f64::MAX;
        let mut residual_history = Vec::new();
        let mut status = SolveStatus::MaxIterations;
        let obs = Obs::new(self.recorder.as_ref(), "solver.serial");

        while iterations < cfg.max_iter {
            iterations += 1;
            let iter_t0 = phases.total_us();

            // Injection.
            for p in 0..n {
                let s = a.s[p];
                i_inj[p] = if s == Complex::ZERO { Complex::ZERO } else { (s / v[p]).conj() };
            }
            phases.injection_us += self.host.region_time_us_ws(
                INJ_FLOPS * n as u64,
                INJ_BYTES * n as u64,
                working_set,
            );
            obs.phase("injection", iter_t0, phases.total_us());
            let bwd_t0 = phases.total_us();

            // Backward sweep: leaves → root.
            for p in (0..n).rev() {
                let mut acc = i_inj[p];
                for &jc in &j[a.child_lo[p] as usize..a.child_hi[p] as usize] {
                    acc += jc;
                }
                j[p] = acc;
            }
            phases.backward_us += self.host.region_time_us_ws(
                BWD_FLOPS_PER_EDGE * (n as u64 - 1),
                BWD_BYTES * n as u64,
                working_set,
            );
            obs.phase("backward", bwd_t0, phases.total_us());
            let fwd_t0 = phases.total_us();

            // Forward sweep with folded convergence norm. The fold must
            // propagate NaN: `d > delta` is false for NaN, which would
            // let a corrupt update vanish from the ∞-norm.
            let mut delta: f64 = 0.0;
            for p in 1..n {
                let parent = a.parent_pos[p] as usize;
                let new_v = v[parent] - a.z[p] * j[p];
                let d = (new_v - v[p]).abs();
                delta = MaxAbsF64::combine(delta, d);
                v[p] = new_v;
            }
            phases.forward_us += self.host.region_time_us_ws(
                FWD_FLOPS * (n as u64 - 1),
                FWD_BYTES * (n as u64 - 1),
                working_set,
            );
            obs.phase("forward", fwd_t0, phases.total_us());
            // The convergence norm is one compare+branch per bus, already
            // counted in FWD_FLOPS; charge the scalar check only.
            phases.convergence_us += self.host.region_time_us(1, 8);

            residual = delta;
            residual_history.push(delta);
            obs.iteration(iterations, iter_t0, phases.total_us(), delta);
            if let Some(s) = monitor.observe(iterations, delta) {
                status = s;
                break;
            }
            if let Some(budget) = cfg.deadline_us {
                let elapsed = phases.total_us();
                if elapsed >= budget {
                    status = SolveStatus::DeadlineExceeded {
                        at_iteration: iterations,
                        elapsed_us: elapsed as u64,
                    };
                    break;
                }
            }
        }

        let timing = Timing {
            phases,
            transfer_us: 0.0,
            transfer_sweep_us: 0.0,
            wall_us: wall0.elapsed().as_secs_f64() * 1e6,
        };
        SolveResult {
            v: a.levels.unpermute(&v),
            j: a.levels.unpermute(&j),
            iterations,
            status,
            residual,
            residual_history,
            timing,
            fault_report: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numc::c;
    use powergrid::NetworkBuilder;

    fn solver() -> SerialSolver {
        SerialSolver::new(HostProps::paper_rig())
    }

    /// Two-bus network solvable by hand:
    /// V₀ = 100 V, Z = 1+0j Ω, S = 100 + 0j VA at bus 1.
    /// Fixed point: V₁ = 100 − 100/V₁ → V₁ = 50 + 50·√(1−4/100)… rather,
    /// V₁² − 100·V₁ + 100 = 0 → V₁ ≈ 98.9898 V.
    fn two_bus() -> RadialNetwork {
        let mut b = NetworkBuilder::new(c(100.0, 0.0));
        b.add_bus(Complex::ZERO);
        b.add_bus(c(100.0, 0.0));
        b.connect(0, 1, c(1.0, 0.0));
        b.build().unwrap()
    }

    #[test]
    fn two_bus_matches_closed_form() {
        let res = solver().solve(&two_bus(), &SolverConfig::default());
        assert!(res.converged(), "residual {}", res.residual);
        let want = 50.0 + (2500.0_f64 - 100.0).sqrt(); // larger root
        assert!((res.v[1].re - want).abs() < 1e-3, "{} vs {want}", res.v[1].re);
        assert!(res.v[1].im.abs() < 1e-9);
        // Branch current = conj(S/V1).
        let i_expect = (c(100.0, 0.0) / res.v[1]).conj();
        assert!((res.j[1] - i_expect).abs() < 1e-6);
        // Root branch current equals it (single path).
        assert!((res.j[0] - i_expect).abs() < 1e-6);
    }

    #[test]
    fn no_load_network_converges_immediately_to_flat_voltage() {
        let mut b = NetworkBuilder::new(c(7200.0, 0.0));
        b.add_bus(Complex::ZERO);
        b.add_bus(Complex::ZERO);
        b.add_bus(Complex::ZERO);
        b.connect(0, 1, c(0.5, 0.2));
        b.connect(1, 2, c(0.5, 0.2));
        let net = b.build().unwrap();
        let res = solver().solve(&net, &SolverConfig::default());
        assert!(res.converged());
        assert_eq!(res.iterations, 1);
        for v in &res.v {
            assert_eq!(*v, c(7200.0, 0.0));
        }
        for j in &res.j {
            assert_eq!(*j, Complex::ZERO);
        }
    }

    #[test]
    fn voltage_drops_monotonically_along_a_loaded_chain() {
        let mut b = NetworkBuilder::new(c(7200.0, 0.0));
        b.add_bus(Complex::ZERO);
        for _ in 1..10 {
            b.add_bus(c(10_000.0, 4_000.0));
        }
        for i in 0..9 {
            b.connect(i, i + 1, c(0.2, 0.1));
        }
        let net = b.build().unwrap();
        let res = solver().solve(&net, &SolverConfig::default());
        assert!(res.converged());
        for i in 1..10 {
            assert!(
                res.v[i].abs() < res.v[i - 1].abs(),
                "|V| must fall moving away from the source"
            );
        }
        // Downstream current shrinks toward the leaf.
        for i in 1..9 {
            assert!(res.j[i].abs() > res.j[i + 1].abs());
        }
    }

    #[test]
    fn nonconvergence_is_reported_not_hidden() {
        // Absurd overload: 10 MVA behind 10 Ω from a 100 V source. The
        // first update is ~10⁶ V — four orders of magnitude above |V₀| —
        // so the early-abort flags divergence instead of burning the
        // whole iteration budget oscillating.
        let mut b = NetworkBuilder::new(c(100.0, 0.0));
        b.add_bus(Complex::ZERO);
        b.add_bus(c(10e6, 0.0));
        b.connect(0, 1, c(10.0, 0.0));
        let net = b.build().unwrap();
        let res = solver().solve(&net, &SolverConfig::new(1e-9, 20));
        assert!(!res.converged());
        assert!(res.status.is_failure(), "overload must be flagged, got {}", res.status);
        assert!(res.iterations < 20, "early-abort must beat the iteration cap");
    }

    #[test]
    fn voltage_collapse_is_numerical_failure_not_convergence() {
        // Crafted collapse: V₀ = 100 V, Z = 10 Ω, S = 1000 VA (all real).
        // Iteration 1: I = conj(S/V₀) = 10 A, so V₁ = 100 − 10·10 = 0
        // exactly; iteration 2 divides by zero → Inf → NaN cascade. The
        // old boolean API reported this as converged (NaN dropped from
        // the fold made the residual look tiny).
        let mut b = NetworkBuilder::new(c(100.0, 0.0));
        b.add_bus(Complex::ZERO);
        b.add_bus(c(1000.0, 0.0));
        b.connect(0, 1, c(10.0, 0.0));
        let net = b.build().unwrap();
        // Disarm the growth cap so only the NaN path can fire.
        let cfg = SolverConfig::new(1e-9, 50).with_divergence(1e300, 50);
        let res = solver().solve(&net, &cfg);
        assert!(
            matches!(res.status, SolveStatus::NumericalFailure { .. }),
            "collapse through V=0 must be a numerical failure, got {}",
            res.status
        );
        assert!(!res.residual.is_finite(), "the corrupt residual must be surfaced");
    }

    #[test]
    fn invalid_config_is_reported_not_iterated() {
        let mut cfg = SolverConfig::default();
        cfg.max_iter = 0;
        let res = solver().solve(&two_bus(), &cfg);
        assert_eq!(res.status, SolveStatus::InvalidConfig);
        assert_eq!(res.iterations, 0);
        assert!(res.residual.is_infinite(), "no iteration ran, so no residual exists");
        assert_eq!(res.v.len(), 2, "flat-start voltages are still returned");
    }

    #[test]
    fn deadline_abort_reports_partial_iterations() {
        // A budget far below one modeled sweep: the deadline trips after
        // the first iteration, before the (unreachably tight) tolerance.
        let cfg = SolverConfig::new(1e-14, 10_000).with_deadline(1e-9);
        let res = solver().solve(&two_bus(), &cfg);
        match res.status {
            SolveStatus::DeadlineExceeded { at_iteration, .. } => {
                assert_eq!(at_iteration, 1);
                assert_eq!(res.iterations, 1);
            }
            other => panic!("expected a deadline abort, got {other}"),
        }
        assert!(res.residual.is_finite(), "partial state is real, not garbage");
    }

    #[test]
    fn tighter_tolerance_needs_more_iterations() {
        let net = two_bus();
        let loose = solver().solve(&net, &SolverConfig::new(1e-3, 100));
        let tight = solver().solve(&net, &SolverConfig::new(1e-12, 100));
        assert!(loose.converged() && tight.converged());
        assert!(tight.iterations > loose.iterations);
    }

    #[test]
    fn modeled_time_scales_with_iterations_and_size() {
        let net = two_bus();
        let r1 = solver().solve(&net, &SolverConfig::new(1e-3, 100));
        let r2 = solver().solve(&net, &SolverConfig::new(1e-12, 100));
        assert!(r2.timing.total_us() > r1.timing.total_us());
        assert_eq!(r1.timing.transfer_us, 0.0, "CPU solver moves nothing over PCIe");
    }
}
