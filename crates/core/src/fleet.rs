//! Fleet-level resilience: N devices behind one deterministic front end.
//!
//! One [`crate::SolveService`] makes a request stream survive a faulty
//! device; this module makes it survive a faulty *fleet*. A
//! [`FleetService`] owns N heterogeneous [`simt`] devices (the E10
//! presets), each wrapped in its own strict-mode `SolveService` — so
//! every device keeps its own circuit breaker, retry budget and fault
//! plan — and schedules a timed arrival stream across them on the
//! modeled clock:
//!
//! * **Routing by load and health.** Each dispatch picks the device
//!   that can start earliest, preferring closed breakers over half-open
//!   over open, then higher historical success rate, then lowest
//!   ordinal. An open-breaker device is skipped except every
//!   [`FleetConfig::rejoin_every`]-th dispatch, which deliberately
//!   feeds it work so its own probation counter can half-open the
//!   breaker and let the device *rejoin* after recovery.
//! * **Failover on unrecoverable failure.** A worker in strict mode
//!   surfaces device loss as [`Outcome::Failed`]; the fleet re-routes
//!   the request to the best untried peer at the modeled time the
//!   failure was observed, and — when every device has refused — to the
//!   fleet-wide CPU rung, which cannot fail. No admitted request is
//!   ever lost: every response is either served or explicitly shed.
//! * **Hedged requests for stragglers.** Once enough requests have
//!   completed to estimate a latency quantile
//!   ([`FleetConfig::hedge_quantile`]), a primary that runs past it is
//!   hedged: a seeded-jitter duplicate launches on the best other
//!   device and the earlier finisher wins. Both executions occupy
//!   their device (hedges are not free), and the decision threshold,
//!   jitter and winner are all modeled-time arithmetic — replayable.
//! * **Batch sharding with reclamation.** A [`Request::Batch`] big
//!   enough to split ([`FleetConfig::shard_min`]) is cut into
//!   contiguous, chunk-aligned shards ([`crate::tensor_batch::shard_ranges`])
//!   across the healthy devices and merged back in scenario order. A
//!   shard stranded on a device that went sticky-lost mid-batch is
//!   *reclaimed* — re-served on the fastest surviving peer (or the CPU
//!   rung) at the time the loss was observed.
//! * **Brown-out ladder.** Overload sheds selectively before it sheds
//!   uniformly: an arrival from a tenant over its queued-request quota
//!   is shed first ([`ShedReason::TenantQuota`]); a full queue then
//!   evicts the youngest queued request of strictly lower
//!   [`Priority`] in favour of the arrival ([`ShedReason::Evicted`]);
//!   only when no cheaper rung applies is the arrival itself shed
//!   ([`ShedReason::QueueFull`]).
//!
//! Determinism is the invariant everything hangs on: routing, failover,
//! hedging, sharding and shedding read only modeled time, seeded RNG
//! streams and per-device fault plans, so the same seeds reproduce
//! byte-identical routing decisions, telemetry and exports.

use std::collections::VecDeque;

use rng::rngs::StdRng;
use rng::{Rng, SeedableRng};
use simt::{DeviceProps, FaultPlan, HostProps, StormSchedule};
use telemetry::trace::ArgValue;
use telemetry::{Recorder, Trace};

use crate::batch::BatchResult;
use crate::integrity::{IntegritySampler, IntegrityStats};
use crate::service::{
    BreakerState, Outcome, Request, Response, ServiceConfig, ServiceStats, SolveService,
};
use crate::tensor_batch::shard_ranges;

/// Request priority class for the brown-out ladder. Ordered: under
/// overload, `Bulk` work is evicted before `Normal`, `Normal` before
/// `Critical`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Best-effort background work — first to go in a brown-out.
    Bulk,
    /// Default interactive work.
    Normal,
    /// Must-answer work — only shed when the queue is full of peers.
    Critical,
}

impl Priority {
    /// Telemetry/report name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Bulk => "bulk",
            Priority::Normal => "normal",
            Priority::Critical => "critical",
        }
    }
}

/// A [`Request`] with fleet metadata: who is asking and how much the
/// answer matters under overload.
#[derive(Clone, Debug)]
pub struct FleetRequest {
    /// The work itself.
    pub req: Request,
    /// Brown-out class (default [`Priority::Normal`]).
    pub priority: Priority,
    /// Tenant id for per-tenant quota enforcement (default 0).
    pub tenant: u32,
}

impl FleetRequest {
    /// A normal-priority request from tenant 0.
    pub fn new(req: Request) -> Self {
        FleetRequest { req, priority: Priority::Normal, tenant: 0 }
    }

    /// Sets the brown-out priority class.
    pub fn with_priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Sets the tenant id.
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }
}

/// Which rung of the brown-out ladder shed a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// The tenant had [`FleetConfig::tenant_quota`] requests queued.
    TenantQuota,
    /// Evicted from the queue by a higher-priority arrival.
    Evicted,
    /// The queue was full and no lower-priority victim existed.
    QueueFull,
}

impl ShedReason {
    /// Telemetry/report name.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::TenantQuota => "tenant-quota",
            ShedReason::Evicted => "evicted",
            ShedReason::QueueFull => "queue-full",
        }
    }
}

/// Tunables of one [`FleetService`].
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// The device models behind the fleet, one worker each; ordinal =
    /// index. Must be non-empty.
    pub devices: Vec<DeviceProps>,
    /// Host model for CPU fallbacks and shard merging.
    pub host: HostProps,
    /// Template for each worker's [`SolveService`] (`fallback` is
    /// forced off per worker so failures surface to the fleet; the
    /// seed is decorrelated per worker).
    pub service: ServiceConfig,
    /// Fleet-wide bound on queued (not yet dispatched) requests.
    pub queue_capacity: usize,
    /// Max queued requests per tenant (`None` = no quota rung).
    pub tenant_quota: Option<usize>,
    /// Latency quantile (0..1) past which a running primary is hedged;
    /// `>= 1.0` disables hedging.
    pub hedge_quantile: f64,
    /// Completed requests required before the quantile is trusted.
    pub hedge_min_samples: usize,
    /// Minimum scenarios per shard; a batch below `2 * shard_min`
    /// stays whole.
    pub shard_min: usize,
    /// Every n-th dispatch also considers open-breaker devices so a
    /// recovered device can probe and rejoin (0 = never).
    pub rejoin_every: u64,
    /// Seed for the fleet's own decision stream (hedge jitter).
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            devices: vec![DeviceProps::paper_rig(), DeviceProps::paper_rig()],
            host: HostProps::paper_rig(),
            service: ServiceConfig::default(),
            queue_capacity: 64,
            tenant_quota: None,
            hedge_quantile: 0.95,
            hedge_min_samples: 8,
            shard_min: 64,
            rejoin_every: 4,
            seed: 0xf1ee7,
        }
    }
}

impl FleetConfig {
    /// `n` identical paper-rig devices — the scaling-headline fleet.
    pub fn uniform(n: usize) -> Self {
        FleetConfig {
            devices: (0..n).map(|_| DeviceProps::paper_rig()).collect(),
            ..FleetConfig::default()
        }
    }

    /// `n` devices cycling through the heterogeneous E10 presets
    /// (GTX 1080 Ti, GTX 1060, Jetson TX2, paper rig).
    pub fn heterogeneous(n: usize) -> Self {
        let presets = [
            DeviceProps::gtx_1080_ti(),
            DeviceProps::gtx_1060(),
            DeviceProps::jetson_tx2(),
            DeviceProps::paper_rig(),
        ];
        FleetConfig {
            devices: (0..n).map(|i| presets[i % presets.len()].clone()).collect(),
            ..FleetConfig::default()
        }
    }
}

/// A served (or shed) fleet request.
#[derive(Clone, Debug)]
pub struct FleetResponse {
    /// Fleet-level request id (dense, assigned at admission).
    pub id: u64,
    /// What happened (merged across shards for a sharded batch).
    pub outcome: Outcome,
    /// Device that produced the winning answer; `None` for the CPU
    /// rung, sharded batches, and shed requests.
    pub device: Option<u32>,
    /// Backend name of the winning execution (`"shed"` if shed).
    pub backend: &'static str,
    /// Brown-out class the request carried.
    pub priority: Priority,
    /// Tenant id the request carried.
    pub tenant: u32,
    /// Modeled arrival time, µs.
    pub arrived_us: f64,
    /// Modeled time the (first) execution started, µs (= arrival for
    /// shed requests).
    pub start_us: f64,
    /// Modeled completion time, µs (= shed time for shed requests).
    pub finish_us: f64,
    /// Peer failovers this request needed.
    pub failovers: u32,
    /// Whether a hedge was launched.
    pub hedged: bool,
    /// Whether the hedge finished first.
    pub hedge_won: bool,
    /// Shards a batch was split into (1 = unsharded).
    pub shards: u32,
    /// Shards reclaimed from a lost device.
    pub reclaimed: u32,
    /// Why the request was shed, when it was.
    pub shed: Option<ShedReason>,
}

impl FleetResponse {
    /// Modeled arrival-to-completion latency, µs (0 for shed requests
    /// shed at arrival).
    pub fn latency_us(&self) -> f64 {
        self.finish_us - self.arrived_us
    }

    /// True when the request produced an answer (not shed, not failed).
    pub fn answered(&self) -> bool {
        matches!(
            self.outcome,
            Outcome::Solved(_) | Outcome::Solved3(_) | Outcome::Batch(_)
        )
    }
}

/// Aggregate fleet counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Requests offered (admitted + shed).
    pub submitted: u64,
    /// Requests answered (any non-shed outcome).
    pub served: u64,
    /// Arrivals shed because their tenant was over quota.
    pub shed_quota: u64,
    /// Queued requests evicted by higher-priority arrivals.
    pub shed_evicted: u64,
    /// Arrivals shed with a full queue and no victim.
    pub shed_queue_full: u64,
    /// Peer failovers after unrecoverable device failures.
    pub failovers: u64,
    /// Requests that ran on the fleet CPU rung after every device
    /// refused them.
    pub cpu_served: u64,
    /// Hedges launched.
    pub hedges: u64,
    /// Hedges that finished before their primary.
    pub hedge_wins: u64,
    /// Batches that were sharded across devices.
    pub sharded_batches: u64,
    /// Shards dispatched (including reclaims).
    pub shards_dispatched: u64,
    /// Shards reclaimed from lost devices.
    pub reclaimed_shards: u64,
    /// Largest queue depth observed at admission.
    pub peak_queue_depth: usize,
}

impl FleetStats {
    /// Total sheds across every ladder rung.
    pub fn shed(&self) -> u64 {
        self.shed_quota + self.shed_evicted + self.shed_queue_full
    }
}

/// Point-in-time health of one device worker.
#[derive(Clone, Copy, Debug)]
pub struct DeviceHealth {
    /// Device ordinal.
    pub ordinal: u32,
    /// Its breaker state.
    pub breaker: BreakerState,
    /// Laplace-smoothed success rate of its device attempts.
    pub score: f64,
    /// Modeled time the device frees up, µs.
    pub free_at_us: f64,
}

/// One device behind the fleet.
struct Worker {
    ordinal: u32,
    svc: SolveService,
    free_at: f64,
}

impl Worker {
    fn score(&self) -> f64 {
        let s = self.svc.stats();
        (s.device_successes as f64 + 1.0)
            / ((s.device_successes + s.device_failures) as f64 + 2.0)
    }
}

/// A queued fleet request.
struct Pending {
    id: u64,
    freq: FleetRequest,
    arrived: f64,
}

/// The fleet front end: N per-device services, one scheduler.
pub struct FleetService {
    cfg: FleetConfig,
    workers: Vec<Worker>,
    /// The last rung: a CPU-only service that cannot fail.
    cpu: SolveService,
    cpu_free_at: f64,
    rng: StdRng,
    next_id: u64,
    dispatches: u64,
    stats: FleetStats,
    recorder: Option<Recorder>,
    /// Service times of answered requests, sorted ascending — the
    /// hedge-quantile estimate.
    completed_us: Vec<f64>,
    /// Shadow-verification sampler over answered responses, when armed.
    integrity: Option<IntegritySampler>,
}

impl FleetService {
    /// Builds the fleet: one strict-mode worker per device preset plus
    /// the CPU rung. Worker seeds are decorrelated from the template.
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(!cfg.devices.is_empty(), "a fleet needs at least one device");
        assert!(cfg.hedge_quantile > 0.0, "hedge quantile must be positive");
        let workers = cfg
            .devices
            .iter()
            .enumerate()
            .map(|(d, props)| {
                let scfg = ServiceConfig {
                    fallback: false,
                    seed: cfg
                        .service
                        .seed
                        .wrapping_add((d as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    ..cfg.service
                };
                let mut svc = SolveService::new(scfg, props.clone(), cfg.host.clone())
                    .with_track(Trace::tid_for_device(d as u32), &format!("fleet.d{d}"));
                svc.set_device_ordinal(d as u32);
                Worker { ordinal: d as u32, svc, free_at: 0.0 }
            })
            .collect();
        let cpu_cfg = ServiceConfig { fallback: true, ..cfg.service };
        let cpu = SolveService::new(cpu_cfg, cfg.devices[0].clone(), cfg.host.clone())
            .with_track(Trace::tid_for_device(cfg.devices.len() as u32), "fleet.cpu");
        let rng = StdRng::seed_from_u64(cfg.seed);
        FleetService {
            cfg,
            workers,
            cpu,
            cpu_free_at: 0.0,
            rng,
            next_id: 0,
            dispatches: 0,
            stats: FleetStats::default(),
            recorder: None,
            completed_us: Vec::new(),
            integrity: None,
        }
    }

    /// Arms a fault plan on device `ordinal` only (peers stay clean);
    /// clones of one plan share an op counter, so arm distinct plans
    /// per device for independent fault streams.
    pub fn with_fault_plan_on(mut self, ordinal: u32, plan: FaultPlan) -> Self {
        self.workers[ordinal as usize].svc.set_fault_plan(plan);
        self
    }

    /// Arms one compound-fault storm across the whole fleet: every
    /// worker gets its own seeded plan (decorrelated per ordinal)
    /// carrying a clone of the schedule bound to that worker's ordinal,
    /// so kill windows correlate exactly across the listed devices
    /// while burst/ramp corruption decisions stay independent.
    pub fn with_storm(mut self, storm: StormSchedule) -> Self {
        for w in &mut self.workers {
            let seed = storm
                .seed()
                .wrapping_add((u64::from(w.ordinal) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let plan = FaultPlan::seeded(seed, 0.0)
                .with_storm(storm.clone())
                .with_ordinal(w.ordinal);
            w.svc.set_fault_plan(plan);
        }
        self
    }

    /// Arms a shadow-verification sampler: a seeded 1-in-K sample of
    /// answered responses is re-solved on the CPU oracle after
    /// dispatch and compared ([`crate::integrity`]). Verdict counters
    /// land on the sampler's recorder; gauges are exported with
    /// [`FleetService::publish_stats`].
    pub fn with_integrity(mut self, sampler: IntegritySampler) -> Self {
        self.integrity = Some(sampler);
        self
    }

    /// Shadow-verification counters so far (zeros when no sampler is
    /// armed).
    pub fn integrity_stats(&self) -> IntegrityStats {
        self.integrity.as_ref().map(|s| *s.stats()).unwrap_or_default()
    }

    /// Attaches a telemetry recorder: fleet decisions land on
    /// [`Trace::TID_FLEET`], each worker's request lane on its own
    /// device track, and [`FleetService::publish_stats`] exports
    /// per-device and fleet-wide gauges.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        rec.name_thread(Trace::TID_FLEET, "fleet (modeled)");
        for w in &mut self.workers {
            w.svc.set_recorder(rec.clone());
        }
        self.cpu.set_recorder(rec.clone());
        self.recorder = Some(rec);
        self
    }

    /// Aggregate fleet counters so far.
    pub fn stats(&self) -> &FleetStats {
        &self.stats
    }

    /// Per-device service counters.
    pub fn device_stats(&self, ordinal: u32) -> &ServiceStats {
        self.workers[ordinal as usize].svc.stats()
    }

    /// Number of devices behind the fleet.
    pub fn num_devices(&self) -> usize {
        self.workers.len()
    }

    /// Point-in-time health of every device, by ordinal.
    pub fn health(&self) -> Vec<DeviceHealth> {
        self.workers
            .iter()
            .map(|w| DeviceHealth {
                ordinal: w.ordinal,
                breaker: w.svc.breaker(),
                score: w.score(),
                free_at_us: w.free_at,
            })
            .collect()
    }

    /// Publishes fleet-wide (`fleet.stats.*`) and per-device
    /// (`fleet.d<i>.stats.*`) gauges on the attached recorder.
    /// Idempotent; called automatically at the end of
    /// [`FleetService::run_stream`].
    pub fn publish_stats(&self) {
        for w in &self.workers {
            w.svc.publish_stats();
        }
        self.cpu.publish_stats();
        let Some(rec) = &self.recorder else { return };
        let s = &self.stats;
        rec.gauge_set("fleet.stats.submitted", s.submitted as f64);
        rec.gauge_set("fleet.stats.served", s.served as f64);
        rec.gauge_set("fleet.stats.shed_quota", s.shed_quota as f64);
        rec.gauge_set("fleet.stats.shed_evicted", s.shed_evicted as f64);
        rec.gauge_set("fleet.stats.shed_queue_full", s.shed_queue_full as f64);
        rec.gauge_set("fleet.stats.failovers", s.failovers as f64);
        rec.gauge_set("fleet.stats.cpu_served", s.cpu_served as f64);
        rec.gauge_set("fleet.stats.hedges", s.hedges as f64);
        rec.gauge_set("fleet.stats.hedge_wins", s.hedge_wins as f64);
        rec.gauge_set("fleet.stats.sharded_batches", s.sharded_batches as f64);
        rec.gauge_set("fleet.stats.shards_dispatched", s.shards_dispatched as f64);
        rec.gauge_set("fleet.stats.reclaimed_shards", s.reclaimed_shards as f64);
        rec.gauge_set("fleet.stats.peak_queue_depth", s.peak_queue_depth as f64);
        rec.gauge_set("fleet.stats.devices", self.workers.len() as f64);
        if let Some(sampler) = &self.integrity {
            sampler.publish();
        }
    }

    /// Replays a timed arrival stream across the fleet and returns
    /// every response (served and shed) in completion order. Arrival
    /// times must be non-decreasing. Whatever is still queued when the
    /// stream ends is drained. Deterministic in modeled time: the same
    /// stream, seeds and fault plans replay byte-identically.
    pub fn run_stream(&mut self, arrivals: Vec<(f64, FleetRequest)>) -> Vec<FleetResponse> {
        let mut waiting: VecDeque<Pending> = VecDeque::new();
        let mut responses = Vec::new();
        let mut last_t = f64::NEG_INFINITY;
        for (t, freq) in arrivals {
            assert!(t >= last_t, "arrival times must be non-decreasing");
            last_t = t;
            // Dispatch everything that can start before this arrival; a
            // request in flight no longer holds a queue slot.
            while let Some(front) = waiting.front() {
                if self.earliest_start(front.arrived) >= t {
                    break;
                }
                let p = waiting.pop_front().expect("front exists");
                let resp = self.dispatch(p);
                responses.push(resp);
            }
            self.stats.submitted += 1;
            self.stats.peak_queue_depth = self.stats.peak_queue_depth.max(waiting.len());
            if let Some(rec) = &self.recorder {
                rec.counter_sample("fleet.queue_depth", t, waiting.len() as f64);
            }
            let id = self.take_id();
            // Brown-out rung 1: per-tenant quota.
            if let Some(quota) = self.cfg.tenant_quota {
                let queued = waiting.iter().filter(|p| p.freq.tenant == freq.tenant).count();
                if queued >= quota {
                    responses.push(self.shed(id, &freq, t, ShedReason::TenantQuota));
                    continue;
                }
            }
            if waiting.len() >= self.cfg.queue_capacity {
                // Rung 2: evict the youngest strictly-lower-priority
                // queued request in favour of this arrival.
                if let Some(pos) =
                    waiting.iter().rposition(|p| p.freq.priority < freq.priority)
                {
                    let victim = waiting.remove(pos).expect("position exists");
                    responses.push(self.shed(
                        victim.id,
                        &victim.freq,
                        t,
                        ShedReason::Evicted,
                    ));
                    waiting.push_back(Pending { id, freq, arrived: t });
                } else {
                    // Rung 3: uniform shed.
                    responses.push(self.shed(id, &freq, t, ShedReason::QueueFull));
                }
                continue;
            }
            waiting.push_back(Pending { id, freq, arrived: t });
        }
        // Graceful drain: admitted work is owed an answer.
        while let Some(p) = waiting.pop_front() {
            let resp = self.dispatch(p);
            responses.push(resp);
        }
        self.publish_stats();
        responses
    }

    fn take_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn shed(&mut self, id: u64, freq: &FleetRequest, t: f64, why: ShedReason) -> FleetResponse {
        match why {
            ShedReason::TenantQuota => self.stats.shed_quota += 1,
            ShedReason::Evicted => self.stats.shed_evicted += 1,
            ShedReason::QueueFull => self.stats.shed_queue_full += 1,
        }
        if let Some(rec) = &self.recorder {
            rec.counter_add(&format!("fleet.shed.{}", why.name()), 1);
            rec.instant_with(
                Trace::TID_FLEET,
                "fleet",
                "shed",
                t,
                vec![
                    ("id".to_string(), ArgValue::U64(id)),
                    ("why".to_string(), ArgValue::from(why.name())),
                    ("priority".to_string(), ArgValue::from(freq.priority.name())),
                    ("tenant".to_string(), ArgValue::U64(u64::from(freq.tenant))),
                ],
            );
        }
        FleetResponse {
            id,
            outcome: Outcome::Rejected { queue_depth: self.cfg.queue_capacity },
            device: None,
            backend: "shed",
            priority: freq.priority,
            tenant: freq.tenant,
            arrived_us: t,
            start_us: t,
            finish_us: t,
            failovers: 0,
            hedged: false,
            hedge_won: false,
            shards: 1,
            reclaimed: 0,
            shed: Some(why),
        }
    }

    /// Earliest modeled time any currently-eligible device could start
    /// a request that arrived at `arrived` (the CPU rung keeps this
    /// finite even when every breaker is open).
    fn earliest_start(&self, arrived: f64) -> f64 {
        match self.pick_device(arrived, &[]) {
            Some(d) => self.workers[d].free_at.max(arrived),
            None => self.cpu_free_at.max(arrived),
        }
    }

    /// Routing: the untried device with (breaker rank, start time,
    /// health, ordinal) minimal. Open breakers are normally skipped,
    /// but every [`FleetConfig::rejoin_every`]-th dispatch deliberately
    /// routes to one (if any) so its probation counter advances and a
    /// recovered device can rejoin; and when nothing else is eligible
    /// an open device is better than nothing.
    fn pick_device(&self, arrived: f64, excluded: &[u32]) -> Option<usize> {
        let pick = |wanted: fn(BreakerState) -> Option<u32>| -> Option<usize> {
            let mut best: Option<(u32, f64, f64, usize)> = None;
            for (i, w) in self.workers.iter().enumerate() {
                if excluded.contains(&w.ordinal) {
                    continue;
                }
                let Some(rank) = wanted(w.svc.breaker()) else { continue };
                let start = w.free_at.max(arrived);
                let cand = (rank, start, -w.score(), i);
                let better = match &best {
                    None => true,
                    Some(b) => {
                        (cand.0, cand.1, cand.2, cand.3) < (b.0, b.1, b.2, b.3)
                    }
                };
                if better {
                    best = Some(cand);
                }
            }
            best.map(|(_, _, _, i)| i)
        };
        let rejoin = self.cfg.rejoin_every > 0
            && self.dispatches.is_multiple_of(self.cfg.rejoin_every);
        if rejoin {
            if let Some(i) = pick(|b| matches!(b, BreakerState::Open).then_some(0)) {
                return Some(i);
            }
        }
        pick(|b| match b {
            BreakerState::Closed => Some(0),
            BreakerState::HalfOpen => Some(1),
            BreakerState::Open => None,
        })
        .or_else(|| pick(|_| Some(0)))
    }

    /// Serves one admitted request end to end.
    fn dispatch(&mut self, p: Pending) -> FleetResponse {
        self.dispatches += 1;
        self.stats.served += 1;
        let resp = match &p.freq.req {
            Request::Batch { scenarios, .. }
                if scenarios.len() / 2 >= self.cfg.shard_min.max(1)
                    && self.workers.len() > 1 =>
            {
                self.dispatch_sharded(&p)
            }
            _ => self.dispatch_serial(&p),
        };
        if resp.answered() {
            let service = resp.finish_us - resp.start_us;
            let at = self
                .completed_us
                .partition_point(|&x| x < service);
            self.completed_us.insert(at, service);
            if let Some(sampler) = &mut self.integrity {
                sampler.observe(&p.freq.req, &resp.outcome);
            }
        }
        if let Some(rec) = &self.recorder {
            rec.counter_add("fleet.requests", 1);
            rec.observe("fleet.latency_us", resp.latency_us());
            rec.span_with(
                Trace::TID_FLEET,
                "fleet",
                "request",
                resp.start_us,
                resp.finish_us - resp.start_us,
                vec![
                    ("id".to_string(), ArgValue::U64(resp.id)),
                    (
                        "device".to_string(),
                        ArgValue::U64(u64::from(resp.device.unwrap_or(u32::MAX))),
                    ),
                    ("backend".to_string(), ArgValue::from(resp.backend)),
                    ("failovers".to_string(), ArgValue::U64(u64::from(resp.failovers))),
                    ("shards".to_string(), ArgValue::U64(u64::from(resp.shards))),
                ],
            );
        }
        resp
    }

    /// One request on one device, with failover and hedging.
    fn dispatch_serial(&mut self, p: &Pending) -> FleetResponse {
        let mut tried: Vec<u32> = Vec::new();
        let mut failovers = 0u32;
        let mut clock = p.arrived;
        let mut first_start = None;
        loop {
            let Some(d) = self.pick_device(clock, &tried) else {
                // Every device refused: the CPU rung cannot.
                let start = clock.max(self.cpu_free_at);
                let resp = self.cpu.serve_cpu_at(start, p.freq.req.clone());
                let finish = start + resp.service_us();
                self.cpu_free_at = finish;
                self.stats.cpu_served += 1;
                return self.finish_serial(
                    p,
                    resp,
                    None,
                    first_start.unwrap_or(start),
                    finish,
                    failovers,
                    false,
                    false,
                );
            };
            let start = clock.max(self.workers[d].free_at);
            first_start.get_or_insert(start);
            let resp = self.workers[d].svc.serve_at(start, p.freq.req.clone());
            let finish = start + resp.service_us();
            self.workers[d].free_at = finish;
            if matches!(resp.outcome, Outcome::Failed(_)) {
                failovers += 1;
                self.stats.failovers += 1;
                tried.push(d as u32);
                if let Some(rec) = &self.recorder {
                    rec.counter_add("fleet.failovers", 1);
                    rec.instant_with(
                        Trace::TID_FLEET,
                        "fleet",
                        "failover",
                        finish,
                        vec![
                            ("id".to_string(), ArgValue::U64(p.id)),
                            ("from".to_string(), ArgValue::U64(d as u64)),
                        ],
                    );
                }
                clock = finish;
                continue;
            }
            // Success — hedge if this primary ran past the latency
            // quantile and a peer is free to duplicate it.
            let primary_us = resp.service_us();
            let (winner, win_dev, win_finish, hedged, hedge_won) =
                match self.maybe_hedge(p, d, start, primary_us, &tried) {
                    Some((h_resp, h_dev, h_finish)) if h_finish < finish => {
                        self.stats.hedge_wins += 1;
                        (h_resp, h_dev, h_finish, true, true)
                    }
                    Some(_) => (resp, d, finish, true, false),
                    None => (resp, d, finish, false, false),
                };
            return self.finish_serial(
                p,
                winner,
                Some(win_dev as u32),
                first_start.unwrap_or(start),
                win_finish,
                failovers,
                hedged,
                hedge_won,
            );
        }
    }

    /// Launches a hedge for a straggling primary. Returns the hedge's
    /// (response, device, finish) when one was launched *and* produced
    /// an answer; the caller picks the earlier finisher.
    fn maybe_hedge(
        &mut self,
        p: &Pending,
        primary: usize,
        start: f64,
        primary_us: f64,
        tried: &[u32],
    ) -> Option<(Response, usize, f64)> {
        if self.cfg.hedge_quantile >= 1.0
            || self.completed_us.len() < self.cfg.hedge_min_samples
        {
            return None;
        }
        let threshold = quantile(&self.completed_us, self.cfg.hedge_quantile);
        if primary_us <= threshold {
            return None;
        }
        let mut excluded = tried.to_vec();
        excluded.push(primary as u32);
        let launch = start + threshold + self.rng.gen_below(16) as f64;
        let h = self.pick_device(launch, &excluded)?;
        self.stats.hedges += 1;
        let h_start = launch.max(self.workers[h].free_at);
        let h_resp = self.workers[h].svc.serve_at(h_start, p.freq.req.clone());
        let h_finish = h_start + h_resp.service_us();
        self.workers[h].free_at = h_finish;
        if let Some(rec) = &self.recorder {
            rec.counter_add("fleet.hedges", 1);
            rec.instant_with(
                Trace::TID_FLEET,
                "fleet",
                "hedge",
                h_start,
                vec![
                    ("id".to_string(), ArgValue::U64(p.id)),
                    ("primary".to_string(), ArgValue::U64(primary as u64)),
                    ("hedge".to_string(), ArgValue::U64(h as u64)),
                ],
            );
        }
        if matches!(h_resp.outcome, Outcome::Failed(_)) {
            // A failed hedge never wins; the primary already answered.
            return None;
        }
        Some((h_resp, h, h_finish))
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_serial(
        &mut self,
        p: &Pending,
        resp: Response,
        device: Option<u32>,
        start: f64,
        finish: f64,
        failovers: u32,
        hedged: bool,
        hedge_won: bool,
    ) -> FleetResponse {
        FleetResponse {
            id: p.id,
            outcome: resp.outcome,
            device,
            backend: resp.backend,
            priority: p.freq.priority,
            tenant: p.freq.tenant,
            arrived_us: p.arrived,
            start_us: start,
            finish_us: finish,
            failovers,
            hedged,
            hedge_won,
            shards: 1,
            reclaimed: 0,
            shed: None,
        }
    }

    /// A big batch: contiguous chunk-aligned shards across the healthy
    /// devices, reclaimed on device loss, merged in scenario order.
    fn dispatch_sharded(&mut self, p: &Pending) -> FleetResponse {
        let Request::Batch { net, scenarios, cfg } = &p.freq.req else {
            unreachable!("dispatch_sharded only sees batches");
        };
        let healthy: Vec<usize> = {
            let non_open: Vec<usize> = self
                .workers
                .iter()
                .enumerate()
                .filter(|(_, w)| w.svc.breaker() != BreakerState::Open)
                .map(|(i, _)| i)
                .collect();
            if non_open.is_empty() {
                (0..self.workers.len()).collect()
            } else {
                non_open
            }
        };
        let ranges = shard_ranges(scenarios.len(), healthy.len(), self.cfg.shard_min);
        if ranges.len() < 2 {
            return self.dispatch_serial(p);
        }
        self.stats.sharded_batches += 1;
        let mut failovers = 0u32;
        let mut reclaimed = 0u32;
        let mut first_start = f64::INFINITY;
        let mut last_finish = p.arrived;
        let mut parts: Vec<BatchResult> = Vec::with_capacity(ranges.len());
        let shards = ranges.len() as u32;
        for (k, range) in ranges.into_iter().enumerate() {
            let d = healthy[k % healthy.len()];
            let shard_req = Request::Batch {
                net: net.clone(),
                scenarios: scenarios[range].to_vec(),
                cfg: *cfg,
            };
            self.stats.shards_dispatched += 1;
            let start = p.arrived.max(self.workers[d].free_at);
            first_start = first_start.min(start);
            let resp = self.workers[d].svc.serve_at(start, shard_req.clone());
            let finish = start + resp.service_us();
            self.workers[d].free_at = finish;
            let part = match resp.outcome {
                Outcome::Batch(b) => {
                    last_finish = last_finish.max(finish);
                    b
                }
                Outcome::Failed(_) => {
                    // Reclaim the stranded shard on the best surviving
                    // peer (or the CPU rung) at the time the loss was
                    // observed.
                    reclaimed += 1;
                    failovers += 1;
                    self.stats.reclaimed_shards += 1;
                    self.stats.failovers += 1;
                    self.stats.shards_dispatched += 1;
                    if let Some(rec) = &self.recorder {
                        rec.counter_add("fleet.reclaimed_shards", 1);
                        rec.instant_with(
                            Trace::TID_FLEET,
                            "fleet",
                            "reclaim",
                            finish,
                            vec![
                                ("id".to_string(), ArgValue::U64(p.id)),
                                ("from".to_string(), ArgValue::U64(d as u64)),
                                ("shard".to_string(), ArgValue::U64(k as u64)),
                            ],
                        );
                    }
                    let (b, f) = self.reclaim_shard(shard_req, d as u32, finish);
                    last_finish = last_finish.max(f);
                    b
                }
                _ => unreachable!("batch requests produce batch outcomes"),
            };
            parts.push(part);
        }
        let merged = merge_batches(parts);
        FleetResponse {
            id: p.id,
            outcome: Outcome::Batch(merged),
            device: None,
            backend: "fleet",
            priority: p.freq.priority,
            tenant: p.freq.tenant,
            arrived_us: p.arrived,
            start_us: first_start,
            finish_us: last_finish,
            failovers,
            hedged: false,
            hedge_won: false,
            shards,
            reclaimed,
            shed: None,
        }
    }

    /// Re-serves a stranded shard on the best peer that is not the
    /// lost device, walking down to the CPU rung if everything fails.
    fn reclaim_shard(&mut self, req: Request, lost: u32, at: f64) -> (BatchResult, f64) {
        let mut excluded = vec![lost];
        let mut clock = at;
        loop {
            let Some(d) = self.pick_device(clock, &excluded) else {
                let start = clock.max(self.cpu_free_at);
                let resp = self.cpu.serve_cpu_at(start, req);
                let finish = start + resp.service_us();
                self.cpu_free_at = finish;
                self.stats.cpu_served += 1;
                let Outcome::Batch(b) = resp.outcome else {
                    unreachable!("CPU batch rung produces a batch");
                };
                return (b, finish);
            };
            let start = clock.max(self.workers[d].free_at);
            let resp = self.workers[d].svc.serve_at(start, req.clone());
            let finish = start + resp.service_us();
            self.workers[d].free_at = finish;
            match resp.outcome {
                Outcome::Batch(b) => return (b, finish),
                Outcome::Failed(_) => {
                    self.stats.failovers += 1;
                    excluded.push(d as u32);
                    clock = finish;
                }
                _ => unreachable!("batch requests produce batch outcomes"),
            }
        }
    }
}

/// The `q`-quantile of an ascending-sorted non-empty slice (nearest
/// rank, no interpolation — byte-stable).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).ceil() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Reassembles shard results into one [`BatchResult`] in scenario
/// order: per-scenario vectors concatenate, iterations take the
/// slowest shard, residual the worst, timings sum (total modeled work).
fn merge_batches(parts: Vec<BatchResult>) -> BatchResult {
    let mut it = parts.into_iter();
    let mut out = it.next().expect("at least one shard");
    for part in it {
        out.v.extend(part.v);
        out.j.extend(part.j);
        out.statuses.extend(part.statuses);
        out.iterations = out.iterations.max(part.iterations);
        if part.residual.is_nan() || part.residual > out.residual {
            out.residual = part.residual;
        }
        out.timing.phases.setup_us += part.timing.phases.setup_us;
        out.timing.phases.injection_us += part.timing.phases.injection_us;
        out.timing.phases.backward_us += part.timing.phases.backward_us;
        out.timing.phases.forward_us += part.timing.phases.forward_us;
        out.timing.phases.convergence_us += part.timing.phases.convergence_us;
        out.timing.phases.teardown_us += part.timing.phases.teardown_us;
        out.timing.wall_us += part.timing.wall_us;
        // Fault/integrity bookkeeping sums across shards; the backend
        // list keeps the first shard's (shards run the same backend).
        out.fault_report = match (out.fault_report.take(), part.fault_report) {
            (Some(mut a), Some(b)) => {
                a.faults_injected += b.faults_injected;
                a.rollbacks += b.rollbacks;
                a.retries += b.retries;
                a.checkpoints += b.checkpoints;
                a.checkpoint_us += b.checkpoint_us;
                a.corruptions_detected += b.corruptions_detected;
                Some(a)
            }
            (a, b) => a.or(b),
        };
    }
    out
}

/// A standard arrival stream for experiments and tests: `n` requests,
/// exponential-ish deterministic inter-arrival gaps averaging
/// `mean_gap_us`, all solving `req`. Seeded and replayable.
pub fn poisson_arrivals(
    n: usize,
    mean_gap_us: f64,
    seed: u64,
    mut make: impl FnMut(usize) -> FleetRequest,
) -> Vec<(f64, FleetRequest)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..n)
        .map(|i| {
            // Inverse-CDF exponential gap from a uniform in (0,1].
            let u = (rng.gen_below(1u64 << 53) as f64 + 1.0) / (1u64 << 53) as f64;
            t += -mean_gap_us * u.ln();
            (t, make(i))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use crate::serial::SerialSolver;
    use crate::status::SolveStatus;
    use numc::Complex;
    use powergrid::ieee::ieee13;
    use powergrid::RadialNetwork;
    use simt::FaultKind;

    fn solve_req() -> Request {
        Request::Solve { net: ieee13(), cfg: SolverConfig::default() }
    }

    fn batch_req(n_scenarios: usize) -> Request {
        let net = ieee13();
        let loads: Vec<Complex> = net.buses().iter().map(|b| b.load).collect();
        let scenarios = (0..n_scenarios)
            .map(|s| {
                let scale = 0.5 + 0.01 * (s % 100) as f64;
                loads.iter().map(|&l| l * scale).collect()
            })
            .collect();
        Request::Batch { net, scenarios, cfg: SolverConfig::default() }
    }

    fn kills_every_attempt() -> FaultPlan {
        let kills: Vec<(u64, FaultKind)> =
            (0..512).map(|k| (2 + 3 * k, FaultKind::DeviceLost { at_op: 0 })).collect();
        FaultPlan::scripted(kills)
    }

    fn serial_reference(net: &RadialNetwork) -> Vec<Complex> {
        SerialSolver::new(HostProps::paper_rig())
            .solve(net, &SolverConfig::default())
            .v
    }

    #[test]
    fn uniform_fleet_serves_a_stream_on_all_devices() {
        let mut fleet = FleetService::new(FleetConfig::uniform(3));
        let arrivals: Vec<(f64, FleetRequest)> =
            (0..12).map(|_| (0.0, FleetRequest::new(solve_req()))).collect();
        let responses = fleet.run_stream(arrivals);
        assert_eq!(responses.len(), 12);
        assert!(responses.iter().all(|r| r.answered()));
        for d in 0..3 {
            assert!(
                fleet.device_stats(d).device_successes > 0,
                "device {d} must share the burst"
            );
        }
    }

    #[test]
    fn failover_moves_work_off_a_dead_device_with_exact_answers() {
        let net = ieee13();
        let reference = serial_reference(&net);
        let mut fleet = FleetService::new(FleetConfig::uniform(2))
            .with_fault_plan_on(0, kills_every_attempt());
        let arrivals: Vec<(f64, FleetRequest)> =
            (0..8).map(|k| (k as f64 * 10.0, FleetRequest::new(solve_req()))).collect();
        let responses = fleet.run_stream(arrivals);
        assert_eq!(responses.len(), 8);
        let scale = net.source_voltage().abs();
        for r in &responses {
            assert!(r.answered(), "failover must answer: {:?}", r.outcome);
            let Outcome::Solved(res) = &r.outcome else { panic!("solve outcome") };
            assert_eq!(res.status, SolveStatus::Converged);
            for (a, b) in res.v.iter().zip(&reference) {
                assert!((*a - *b).abs() <= 1e-9 * scale);
            }
        }
        assert!(fleet.stats().failovers > 0, "device 0 failures must fail over");
    }

    #[test]
    fn whole_fleet_loss_lands_on_the_cpu_rung_with_zero_lost() {
        // Both devices die on every attempt. Distinct plans: clones of
        // one plan share an op counter.
        let mut fleet = FleetService::new(FleetConfig::uniform(2))
            .with_fault_plan_on(0, kills_every_attempt())
            .with_fault_plan_on(1, kills_every_attempt());
        let arrivals: Vec<(f64, FleetRequest)> =
            (0..5).map(|k| (k as f64 * 10.0, FleetRequest::new(solve_req()))).collect();
        let responses = fleet.run_stream(arrivals);
        assert_eq!(responses.len(), 5);
        assert!(responses.iter().all(|r| r.answered()), "CPU rung cannot fail");
        assert!(fleet.stats().cpu_served > 0 || fleet.stats().failovers > 0);
        // Zero lost: answered + shed == submitted.
        let answered = responses.iter().filter(|r| r.answered()).count() as u64;
        assert_eq!(answered + fleet.stats().shed(), fleet.stats().submitted);
    }

    #[test]
    fn brown_out_ladder_sheds_in_order() {
        let cfg = FleetConfig {
            queue_capacity: 2,
            tenant_quota: Some(2),
            ..FleetConfig::uniform(1)
        };
        let mut fleet = FleetService::new(cfg);
        // A burst at t=0: tenant 7 floods (quota cuts it at 2 queued),
        // then a critical arrival evicts queued bulk work.
        let mut arrivals: Vec<(f64, FleetRequest)> = Vec::new();
        for _ in 0..4 {
            arrivals.push((
                0.0,
                FleetRequest::new(solve_req())
                    .with_priority(Priority::Bulk)
                    .with_tenant(7),
            ));
        }
        arrivals.push((
            0.0,
            FleetRequest::new(solve_req())
                .with_priority(Priority::Critical)
                .with_tenant(1),
        ));
        let responses = fleet.run_stream(arrivals);
        assert_eq!(responses.len(), 5);
        let s = fleet.stats();
        assert!(s.shed_quota >= 1, "tenant 7 must hit its quota");
        assert_eq!(s.shed_evicted, 1, "critical arrival evicts queued bulk");
        let critical = responses
            .iter()
            .find(|r| r.priority == Priority::Critical)
            .expect("critical response");
        assert!(critical.answered(), "critical work survives the brown-out");
        let evicted = responses.iter().find(|r| r.shed == Some(ShedReason::Evicted));
        assert_eq!(evicted.expect("eviction").priority, Priority::Bulk);
    }

    #[test]
    fn sharded_batch_merges_in_scenario_order() {
        let n = 96;
        let req = batch_req(n);
        // Single-device reference answer.
        let mut lone = FleetService::new(FleetConfig {
            shard_min: usize::MAX,
            ..FleetConfig::uniform(1)
        });
        let reference = lone.run_stream(vec![(0.0, FleetRequest::new(req.clone()))]);
        let Outcome::Batch(ref_b) = &reference[0].outcome else { panic!("batch") };
        // Three-device sharded answer.
        let cfg = FleetConfig { shard_min: 16, ..FleetConfig::uniform(3) };
        let mut fleet = FleetService::new(cfg);
        let responses = fleet.run_stream(vec![(0.0, FleetRequest::new(req))]);
        let r = &responses[0];
        assert!(r.shards >= 2, "batch must shard, got {}", r.shards);
        assert_eq!(fleet.stats().sharded_batches, 1);
        let Outcome::Batch(b) = &r.outcome else { panic!("batch") };
        assert_eq!(b.v.len(), n);
        assert_eq!(b.statuses.len(), n);
        let scale = ieee13().source_voltage().abs();
        for s in 0..n {
            for (a, c) in b.v[s].iter().zip(&ref_b.v[s]) {
                assert!((*a - *c).abs() <= 1e-9 * scale, "scenario {s} must merge in order");
            }
        }
    }

    #[test]
    fn lost_shard_is_reclaimed_not_lost() {
        let n = 96;
        let req = batch_req(n);
        let cfg = FleetConfig { shard_min: 16, ..FleetConfig::uniform(2) };
        let mut fleet = FleetService::new(cfg).with_fault_plan_on(1, kills_every_attempt());
        let responses = fleet.run_stream(vec![(0.0, FleetRequest::new(req))]);
        let r = &responses[0];
        assert!(r.answered());
        assert!(r.reclaimed >= 1, "the dead device's shard must be reclaimed");
        assert_eq!(fleet.stats().reclaimed_shards as u32, r.reclaimed);
        let Outcome::Batch(b) = &r.outcome else { panic!("batch") };
        assert_eq!(b.v.len(), n, "no scenario may be dropped");
        assert!(b.converged());
    }

    #[test]
    fn straggler_devices_get_hedged() {
        // A fast and a very slow device; a tight quantile over a warmup
        // of fast completions makes slow-primary requests stragglers.
        let cfg = FleetConfig {
            devices: vec![DeviceProps::gtx_1080_ti(), DeviceProps::jetson_tx2()],
            hedge_quantile: 0.5,
            hedge_min_samples: 4,
            rejoin_every: 0,
            ..FleetConfig::default()
        };
        let mut fleet = FleetService::new(cfg);
        // Saturating burst so both devices take primaries.
        let arrivals: Vec<(f64, FleetRequest)> =
            (0..24).map(|_| (0.0, FleetRequest::new(solve_req()))).collect();
        let responses = fleet.run_stream(arrivals);
        assert!(responses.iter().all(|r| r.answered()));
        assert!(fleet.stats().hedges >= 1, "slow-device primaries must hedge");
        let hedged: Vec<_> = responses.iter().filter(|r| r.hedged).collect();
        assert!(!hedged.is_empty());
        for r in hedged {
            if r.hedge_won {
                assert!(r.device.is_some());
            }
        }
    }

    #[test]
    fn same_seed_replays_byte_identically() {
        let run = || {
            let cfg = FleetConfig {
                tenant_quota: Some(4),
                queue_capacity: 6,
                ..FleetConfig::heterogeneous(3)
            };
            let mut fleet = FleetService::new(cfg)
                .with_fault_plan_on(1, FaultPlan::seeded(20260808, 0.02));
            let arrivals = poisson_arrivals(32, 40.0, 7, |i| {
                FleetRequest::new(solve_req())
                    .with_tenant((i % 3) as u32)
                    .with_priority(if i % 5 == 0 { Priority::Critical } else { Priority::Normal })
            });
            let responses = fleet.run_stream(arrivals);
            let fingerprint: Vec<String> = responses
                .iter()
                .map(|r| {
                    format!(
                        "{}:{:?}:{}:{}:{}:{}:{:?}",
                        r.id,
                        r.device,
                        r.backend,
                        r.failovers,
                        r.hedged,
                        r.finish_us,
                        r.shed
                    )
                })
                .collect();
            (fingerprint, *fleet.stats())
        };
        let (f1, s1) = run();
        let (f2, s2) = run();
        assert_eq!(f1, f2, "routing/hedging/shedding must replay exactly");
        assert_eq!(s1, s2, "fleet counters must replay exactly");
    }

    #[test]
    fn open_breaker_device_rejoins_via_rejoin_dispatches() {
        // Device 0 dies a few times (opening its breaker), then heals.
        let kills: Vec<(u64, FaultKind)> =
            (0..6).map(|k| (2 + 3 * k, FaultKind::DeviceLost { at_op: 0 })).collect();
        let cfg = FleetConfig {
            service: ServiceConfig {
                breaker_threshold: 2,
                breaker_probe_after: 1,
                max_retries: 0,
                ..ServiceConfig::default()
            },
            rejoin_every: 2,
            ..FleetConfig::uniform(2)
        };
        let mut fleet =
            FleetService::new(cfg).with_fault_plan_on(0, FaultPlan::scripted(kills));
        let arrivals: Vec<(f64, FleetRequest)> =
            (0..40).map(|k| (k as f64 * 5.0, FleetRequest::new(solve_req()))).collect();
        let responses = fleet.run_stream(arrivals);
        assert!(responses.iter().all(|r| r.answered()));
        // The breaker opened at some point...
        assert!(fleet.device_stats(0).breaker_opens >= 1);
        // ...and the healed device rejoined and served real work again.
        assert_eq!(fleet.health()[0].breaker, BreakerState::Closed);
        assert!(fleet.device_stats(0).breaker_closes >= 1);
        assert!(fleet.device_stats(0).device_successes > 0);
    }

    #[test]
    fn quantile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.5), 3.0);
        assert_eq!(quantile(&v, 0.95), 4.0);
        assert_eq!(quantile(&v, 0.01), 2.0);
        assert_eq!(quantile(&[5.0], 0.99), 5.0);
    }
}
