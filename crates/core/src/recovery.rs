//! Checkpoint/rollback recovery and graceful GPU→CPU degradation.
//!
//! The fault model ([`simt::FaultPlan`]) injects loud errors (failed
//! allocations and launches, device loss) and *silent* data corruption
//! (transfer bit flips, resident-buffer bit flips). This module turns
//! a fallible, faulty device into a solver that still produces the
//! fault-free answer:
//!
//! * **Checkpoints.** Every `checkpoint_every` iterations the supervisor
//!   downloads the voltage state. A checkpoint taken while *tainted*
//!   (faults observed since the last certified checkpoint) must first
//!   pass certification: the static topology buffers are compared
//!   byte-for-byte against their host copies, and one host-side sweep
//!   from the downloaded voltages must reproduce a residual consistent
//!   with the device's. The initial checkpoint is the flat start — known
//!   clean without touching the device.
//! * **Detection.** Loud faults surface as [`DeviceError`]s from the
//!   fallible kernels. Silent corruption is biased into f64 exponent
//!   bits, so it shows up as a residual spike or NaN within an
//!   iteration or two; whatever slips past that is caught by the
//!   certification gates, which also guard convergence itself: a
//!   tainted "converged" result is accepted only after the static
//!   check, a host-sweep residual within tolerance, and an elementwise
//!   branch-current cross-check.
//! * **Rollback.** Any anomaly while tainted triggers a rollback:
//!   statics are re-uploaded (healing resident corruption), voltages
//!   are restored from the last certified checkpoint, and the sweep
//!   replays. Anomalies while *untainted* are genuine — they are
//!   reported honestly, never rolled back.
//! * **Degradation.** Every rollback or restart charges a budget of
//!   `max_recoveries`. Device loss or budget exhaustion degrades the
//!   backend: gpu → multicore → serial. The CPU backends cannot fault,
//!   so a degraded solve reproduces the true answer (or the true
//!   failure) deterministically.
//!
//! Because rollbacks restore certified-clean state and the CPU
//! fallbacks are fault-free, a recovered solve matches the fault-free
//! solve's voltages; results carry [`SolveStatus::Recovered`] and a
//! [`FaultReport`] so callers can see the run was not clean.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use numc::Complex;
use powergrid::three_phase::ThreePhaseNetwork;
use powergrid::RadialNetwork;
use simt::{Device, DeviceError, DeviceProps, FaultPlan, HostProps};

use telemetry::Recorder;

use crate::arrays::SolverArrays;
use crate::config::SolverConfig;
use crate::gpu::{BackwardStrategy, GpuSession};
use crate::jump::{JumpArrays, JumpSession};
use crate::multicore::MulticoreSolver;
use crate::obs::Obs;
use crate::report::{FaultReport, SolveResult};
use crate::serial::SerialSolver;
use crate::status::{ConvergenceMonitor, SolveStatus};
use crate::three_phase::{Arrays3, Gpu3Solver, Serial3Solver, Solve3Result};

/// A residual is anomalous when it exceeds this multiple of the
/// previous iteration's residual (or of the tolerance, near
/// convergence). Exponent-bit corruption changes magnitudes by at least
/// 2×, so genuine FBS decay and injected corruption separate cleanly.
pub(crate) const SPIKE_FACTOR: f64 = 4.0;

/// One GPU sweep in progress, abstracted over the level-synchronous and
/// jump formulations so the recovery loop in [`drive`] is written once.
///
/// All voltages are in the session's device position order.
pub(crate) trait SweepSession {
    /// Modeled µs elapsed on this session so far (phase times plus
    /// recovery traffic) — the clock [`SolverConfig::deadline_us`] is
    /// checked against.
    fn elapsed_modeled_us(&self) -> f64;
    /// Runs one full FBS iteration; returns the ∞-norm voltage update.
    fn iterate(&mut self) -> Result<f64, DeviceError>;
    /// Downloads the voltage state (checkpoint capture).
    fn snapshot(&mut self) -> Result<Vec<Complex>, DeviceError>;
    /// Re-uploads every static buffer and the given voltages, clearing
    /// scratch state — heals any resident corruption.
    fn restore(&mut self, v_pos: &[Complex]) -> Result<(), DeviceError>;
    /// Compares every static device buffer byte-for-byte against its
    /// host copy.
    fn verify_static(&mut self) -> Result<bool, DeviceError>;
    /// Downloads the final voltages and branch currents.
    fn download(&mut self) -> Result<(Vec<Complex>, Vec<Complex>), DeviceError>;
    /// One host-side FBS iteration from `v_pos`: returns the residual
    /// it would produce and the host-computed branch currents.
    fn host_iterate(&self, v_pos: &[Complex]) -> (f64, Vec<Complex>);
    /// Source voltage magnitude (tolerance scaling).
    fn source_mag(&self) -> f64;
    /// Faults the device has recorded so far (monotone per device).
    fn faults_observed(&self) -> u32;
}

/// The bounded retry budget one resilient solve may spend.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RetryBudget {
    max: u32,
    used: u32,
}

impl RetryBudget {
    pub(crate) fn new(max: u32) -> Self {
        RetryBudget { max, used: 0 }
    }

    /// Consumes one retry; `false` means the budget is exhausted.
    pub(crate) fn charge(&mut self) -> bool {
        if self.used >= self.max {
            return false;
        }
        self.used += 1;
        true
    }

    pub(crate) fn used(&self) -> u32 {
        self.used
    }
}

/// What [`drive`] hands back on a completed (possibly honestly failed)
/// solve, in device position order.
pub(crate) struct DriveOutcome {
    pub v_pos: Vec<Complex>,
    pub j_pos: Vec<Complex>,
    pub iterations: u32,
    pub status: SolveStatus,
    pub residual: f64,
    pub residual_history: Vec<f64>,
}

/// Why [`drive`] gave up on the current device.
pub(crate) enum DriveAbort {
    /// The device is gone; no retry on it can succeed.
    Lost(DeviceError),
    /// The retry budget ran dry.
    Exhausted,
    /// Session setup failed transiently; retry on a fresh device
    /// (already charged to the budget).
    Restart,
}

/// The last certified-clean state the sweep can roll back to.
struct Checkpoint {
    v: Vec<Complex>,
    iterations: u32,
    residual: f64,
    history: Vec<f64>,
    monitor: ConvergenceMonitor,
    faults: u32,
}

/// Rolls the session back to `ckpt`, charging the budget; loud faults
/// during the restore itself are retried within the same budget.
fn rollback<S: SweepSession>(
    sess: &mut S,
    ckpt: &Checkpoint,
    report: &mut FaultReport,
    budget: &mut RetryBudget,
    obs: &Obs,
) -> Result<(), DriveAbort> {
    loop {
        report.rollbacks += 1;
        obs.instant("rollback", sess.elapsed_modeled_us());
        if !budget.charge() {
            return Err(DriveAbort::Exhausted);
        }
        report.retries += 1;
        match sess.restore(&ckpt.v) {
            Ok(()) => return Ok(()),
            Err(e @ DeviceError::DeviceLost { .. }) => return Err(DriveAbort::Lost(e)),
            Err(e) => {
                if matches!(e, DeviceError::TransferCorrupted { .. }) {
                    report.corruptions_detected += 1;
                }
                continue;
            }
        }
    }
}

/// The checkpointed iteration loop shared by every device backend.
///
/// With `checkpointing` false (no fault plan armed) this performs
/// exactly the same device operations as the plain solver loop — zero
/// recovery overhead on clean runs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive<S: SweepSession>(
    sess: &mut S,
    cfg: &SolverConfig,
    init_v: &[Complex],
    checkpointing: bool,
    report: &mut FaultReport,
    budget: &mut RetryBudget,
    cancel: Option<&AtomicBool>,
    obs: &Obs,
) -> Result<DriveOutcome, DriveAbort> {
    let monitor0 = ConvergenceMonitor::new(cfg, sess.source_mag());
    let tol = monitor0.tol();
    // The flat start is host-known clean: certifying it costs nothing.
    // `faults: 0` (not the current count) so setup-time corruption
    // taints the run and gets caught by the first certification.
    let mut ckpt = Checkpoint {
        v: init_v.to_vec(),
        iterations: 0,
        residual: f64::INFINITY,
        history: Vec::new(),
        monitor: monitor0,
        faults: 0,
    };

    'attempt: loop {
        let mut mon = ckpt.monitor.clone();
        let mut iters = ckpt.iterations;
        let mut history = ckpt.history.clone();
        let mut prev_r = ckpt.residual;
        let mut residual = ckpt.residual;

        macro_rules! step {
            ($e:expr) => {
                match $e {
                    Ok(x) => x,
                    Err(e @ DeviceError::DeviceLost { .. }) => {
                        return Err(DriveAbort::Lost(e));
                    }
                    Err(e) => {
                        if matches!(e, DeviceError::TransferCorrupted { .. }) {
                            report.corruptions_detected += 1;
                            obs.instant("corruption-detected", sess.elapsed_modeled_us());
                        }
                        rollback(sess, &ckpt, report, budget, obs)?;
                        continue 'attempt;
                    }
                }
            };
        }
        macro_rules! recover {
            () => {{
                rollback(sess, &ckpt, report, budget, obs)?;
                continue 'attempt;
            }};
        }

        loop {
            if iters >= cfg.max_iter {
                if sess.faults_observed() > ckpt.faults {
                    recover!();
                }
                let (v_pos, j_pos) = step!(sess.download());
                return Ok(DriveOutcome {
                    v_pos,
                    j_pos,
                    iterations: iters,
                    status: SolveStatus::MaxIterations,
                    residual,
                    residual_history: history,
                });
            }
            iters += 1;
            let r = step!(sess.iterate());
            history.push(r);
            residual = r;
            let tainted = sess.faults_observed() > ckpt.faults;
            if tainted && (!r.is_finite() || r > SPIKE_FACTOR * prev_r.max(tol)) {
                recover!();
            }
            match mon.observe(iters, r) {
                None => {
                    // Deadline and watchdog-cancel checks happen only on
                    // a still-running iteration, mirroring the plain
                    // solver loops: a converged/failed status is never
                    // masked by a slow clock.
                    let deadline_hit = cfg
                        .deadline_us
                        .is_some_and(|budget_us| sess.elapsed_modeled_us() >= budget_us);
                    let cancelled =
                        cancel.is_some_and(|c| c.load(Ordering::Relaxed));
                    if deadline_hit || cancelled {
                        if sess.faults_observed() > ckpt.faults {
                            recover!();
                        }
                        let (v_pos, j_pos) = step!(sess.download());
                        return Ok(DriveOutcome {
                            v_pos,
                            j_pos,
                            iterations: iters,
                            status: SolveStatus::DeadlineExceeded {
                                at_iteration: iters,
                                elapsed_us: sess.elapsed_modeled_us() as u64,
                            },
                            residual,
                            residual_history: history,
                        });
                    }
                    prev_r = r;
                    if checkpointing && iters.is_multiple_of(cfg.checkpoint_every) {
                        if tainted {
                            // Certification: statics exact, and one host
                            // sweep from the captured voltages must agree
                            // with what the device just reported.
                            if !step!(sess.verify_static()) {
                                recover!();
                            }
                            let v = step!(sess.snapshot());
                            let (rh, _) = sess.host_iterate(&v);
                            if !rh.is_finite() || rh > SPIKE_FACTOR * r.max(tol) {
                                recover!();
                            }
                            ckpt.v = v;
                        } else {
                            ckpt.v = step!(sess.snapshot());
                        }
                        ckpt.iterations = iters;
                        ckpt.residual = r;
                        ckpt.history = history.clone();
                        ckpt.monitor = mon.clone();
                        ckpt.faults = sess.faults_observed();
                        report.checkpoints += 1;
                        obs.instant("checkpoint", sess.elapsed_modeled_us());
                    }
                }
                Some(SolveStatus::Converged) => {
                    if !tainted {
                        let (v_pos, j_pos) = step!(sess.download());
                        return Ok(DriveOutcome {
                            v_pos,
                            j_pos,
                            iterations: iters,
                            status: SolveStatus::Converged,
                            residual,
                            residual_history: history,
                        });
                    }
                    // Tainted convergence must earn acceptance.
                    if !step!(sess.verify_static()) {
                        recover!();
                    }
                    let (v_pos, j_pos) = step!(sess.download());
                    let (rh, j_h) = sess.host_iterate(&v_pos);
                    let j_ok = j_pos.len() == j_h.len()
                        && j_pos.iter().zip(&j_h).all(|(a, b)| {
                            let d = (*a - *b).abs();
                            d.is_finite() && d <= 1e-4 * (1.0 + b.abs())
                        });
                    if rh.is_finite() && rh <= SPIKE_FACTOR * tol && j_ok {
                        return Ok(DriveOutcome {
                            v_pos,
                            j_pos,
                            iterations: iters,
                            status: SolveStatus::Converged,
                            residual,
                            residual_history: history,
                        });
                    }
                    recover!();
                }
                Some(bad) => {
                    if tainted {
                        recover!();
                    }
                    // A genuine divergence or numerical failure: report
                    // it honestly, never roll it back.
                    let (v_pos, j_pos) = step!(sess.download());
                    return Ok(DriveOutcome {
                        v_pos,
                        j_pos,
                        iterations: iters,
                        status: bad,
                        residual,
                        residual_history: history,
                    });
                }
            }
        }
    }
}

/// Which solver implementation a resilient solve runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Serial CPU reference.
    Serial,
    /// Level-parallel multicore CPU solver.
    Multicore,
    /// Level-synchronous GPU solver, segmented-scan backward.
    Gpu,
    /// Level-synchronous GPU solver, direct backward.
    GpuDirect,
    /// Level-synchronous GPU solver, atomic-scatter backward.
    GpuAtomic,
    /// Depth-insensitive jump GPU solver.
    GpuJump,
}

impl Backend {
    /// CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Serial => "serial",
            Backend::Multicore => "multicore",
            Backend::Gpu => "gpu",
            Backend::GpuDirect => "gpu-direct",
            Backend::GpuAtomic => "gpu-atomic",
            Backend::GpuJump => "gpu-jump",
        }
    }

    /// Parses a CLI solver name.
    pub fn from_name(name: &str) -> Option<Backend> {
        Some(match name {
            "serial" => Backend::Serial,
            "multicore" => Backend::Multicore,
            "gpu" => Backend::Gpu,
            "gpu-direct" => Backend::GpuDirect,
            "gpu-atomic" => Backend::GpuAtomic,
            "gpu-jump" => Backend::GpuJump,
            _ => return None,
        })
    }

    /// The next backend in the degradation chain, `None` at the end.
    /// Device backends fall back to the multicore CPU solver, which
    /// falls back to serial; CPU backends cannot fault but the chain is
    /// defined all the way down.
    pub fn fallback(self) -> Option<Backend> {
        match self {
            Backend::Serial => None,
            Backend::Multicore => Some(Backend::Serial),
            _ => Some(Backend::Multicore),
        }
    }

    /// Whether this backend runs on the simulated device (and is
    /// therefore exposed to injected device faults).
    pub fn is_device(self) -> bool {
        !matches!(self, Backend::Serial | Backend::Multicore)
    }
}

/// Why a resilient solve could not produce a result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResilienceError {
    /// The device was lost and degradation is disabled.
    DeviceLost(DeviceError),
    /// The retry budget ran dry and degradation is disabled.
    BudgetExhausted {
        /// Retries spent before giving up.
        retries: u32,
    },
}

impl fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilienceError::DeviceLost(e) => {
                write!(f, "unrecoverable: {e} and degradation is disabled")
            }
            ResilienceError::BudgetExhausted { retries } => {
                write!(f, "unrecoverable: recovery budget exhausted after {retries} retries")
            }
        }
    }
}

impl std::error::Error for ResilienceError {}

/// Fault-tolerant single-phase solver: checkpoints, rolls back, retries
/// on fresh devices, and degrades gpu → multicore → serial.
pub struct ResilientSolver {
    backend: Backend,
    props: DeviceProps,
    host: HostProps,
    plan: Option<FaultPlan>,
    degrade: bool,
    last_device: Option<Device>,
    cancel: Option<Arc<AtomicBool>>,
    recorder: Option<Recorder>,
}

impl ResilientSolver {
    /// Creates a supervisor for the given backend and hardware models.
    pub fn new(backend: Backend, props: DeviceProps, host: HostProps) -> Self {
        ResilientSolver {
            backend,
            props,
            host,
            plan: None,
            degrade: true,
            last_device: None,
            cancel: None,
            recorder: None,
        }
    }

    /// Attaches a telemetry recorder: the device sessions it drives emit
    /// per-iteration/per-phase spans, and checkpoint/rollback/backend
    /// switches show up as instant events.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Arms a fault plan; every device the supervisor creates gets a
    /// clone (clones share the op counter, so retries continue the
    /// fault stream instead of replaying it).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Enables or disables GPU→CPU degradation (default enabled).
    pub fn with_degradation(mut self, degrade: bool) -> Self {
        self.degrade = degrade;
        self
    }

    /// Arms a cooperative cancellation flag. A watchdog (or any other
    /// supervisor) sets the flag; the device iteration loop notices it
    /// at the next convergence check and returns the partial state with
    /// [`SolveStatus::DeadlineExceeded`]. The flag never consumes
    /// fault-plan operations, so armed-but-unfired watchdogs leave the
    /// fault stream untouched.
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The backend this supervisor starts on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The device used by the most recent device attempt (timeline and
    /// fault-log inspection), if any.
    pub fn last_device(&self) -> Option<&Device> {
        self.last_device.as_ref()
    }

    /// Solves, recovering from injected faults.
    pub fn solve(
        &mut self,
        net: &RadialNetwork,
        cfg: &SolverConfig,
    ) -> Result<SolveResult, ResilienceError> {
        if cfg.validate().is_err() {
            let mut res =
                crate::report::invalid_config_result(net.num_buses(), net.source_voltage());
            res.fault_report = Some(FaultReport {
                backends: vec![self.backend.name().to_string()],
                ..FaultReport::default()
            });
            return Ok(res);
        }
        let mut report = FaultReport::default();
        let mut budget = RetryBudget::new(cfg.max_recoveries);
        let mut backend = self.backend;
        loop {
            report.backends.push(backend.name().to_string());
            if !backend.is_device() {
                let mut res = match backend {
                    Backend::Serial => {
                        let mut s = SerialSolver::new(self.host.clone());
                        if let Some(rec) = &self.recorder {
                            s = s.with_recorder(rec.clone());
                        }
                        s.solve(net, cfg)
                    }
                    Backend::Multicore => {
                        let mut s = MulticoreSolver::new(
                            self.host.clone(),
                            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
                        );
                        if let Some(rec) = &self.recorder {
                            s = s.with_recorder(rec.clone());
                        }
                        s.solve(net, cfg)
                    }
                    _ => unreachable!(),
                };
                res.status = upgraded(res.status, &report);
                res.fault_report = Some(report);
                return Ok(res);
            }
            match self.run_device(backend, net, cfg, &mut report, &mut budget) {
                Ok(mut res) => {
                    res.status = upgraded(res.status, &report);
                    res.fault_report = Some(report);
                    return Ok(res);
                }
                Err(abort) => {
                    if self.degrade {
                        backend = backend.fallback().expect("device backends have a fallback");
                        continue;
                    }
                    return Err(match abort {
                        DriveAbort::Lost(e) => ResilienceError::DeviceLost(e),
                        _ => ResilienceError::BudgetExhausted { retries: report.retries },
                    });
                }
            }
        }
    }

    /// Runs attempts on fresh devices until one completes or the
    /// backend must be abandoned.
    fn run_device(
        &mut self,
        backend: Backend,
        net: &RadialNetwork,
        cfg: &SolverConfig,
        report: &mut FaultReport,
        budget: &mut RetryBudget,
    ) -> Result<SolveResult, DriveAbort> {
        let level_arrays =
            (backend != Backend::GpuJump).then(|| SolverArrays::new(net));
        let jump_arrays = (backend == Backend::GpuJump).then(|| JumpArrays::new(net));
        let checkpointing = self.plan.is_some();
        let cancel = self.cancel.clone();
        let obs = Obs::new(self.recorder.as_ref(), "recovery");
        loop {
            let mut dev = Device::new(self.props.clone());
            if let Some(plan) = &self.plan {
                dev.arm_faults(plan.clone());
            }
            // Corrupted index buffers can drive kernels out of bounds;
            // the engine propagates the panic, which is just another
            // fault: charge it and restart on a fresh device.
            let attempt = catch_unwind(AssertUnwindSafe(|| match backend {
                Backend::GpuJump => run_jump_attempt(
                    &mut dev,
                    jump_arrays.as_ref().unwrap(),
                    cfg,
                    checkpointing,
                    report,
                    budget,
                    cancel.as_deref(),
                    &obs,
                ),
                _ => run_level_attempt(
                    &mut dev,
                    level_arrays.as_ref().unwrap(),
                    strategy_of(backend),
                    cfg,
                    checkpointing,
                    report,
                    budget,
                    cancel.as_deref(),
                    &obs,
                ),
            }));
            report.faults_injected += dev.fault_log().len() as u32;
            let lost = dev.is_lost();
            self.last_device = Some(dev);
            match attempt {
                Ok(Ok(res)) => return Ok(res),
                Ok(Err(DriveAbort::Restart)) => continue,
                Ok(Err(abort)) => return Err(abort),
                Err(_panic) => {
                    if lost {
                        return Err(DriveAbort::Lost(DeviceError::DeviceLost { at_op: 0 }));
                    }
                    report.rollbacks += 1;
                    if !budget.charge() {
                        return Err(DriveAbort::Exhausted);
                    }
                    report.retries += 1;
                    continue;
                }
            }
        }
    }
}

fn strategy_of(backend: Backend) -> BackwardStrategy {
    match backend {
        Backend::GpuDirect => BackwardStrategy::Direct,
        Backend::GpuAtomic => BackwardStrategy::AtomicScatter,
        _ => BackwardStrategy::SegScan,
    }
}

/// Converged-but-not-clean runs are reported as recovered.
fn upgraded(status: SolveStatus, report: &FaultReport) -> SolveStatus {
    if status == SolveStatus::Converged
        && (report.faults_injected > 0 || report.retries > 0 || report.degraded())
    {
        SolveStatus::Recovered { faults: report.faults_injected, retries: report.retries }
    } else {
        status
    }
}

/// Maps a session-setup failure: device loss aborts the backend, any
/// other error charges the budget and asks for a fresh device.
fn setup_abort(
    e: DeviceError,
    report: &mut FaultReport,
    budget: &mut RetryBudget,
) -> DriveAbort {
    if matches!(e, DeviceError::DeviceLost { .. }) {
        return DriveAbort::Lost(e);
    }
    if matches!(e, DeviceError::TransferCorrupted { .. }) {
        report.corruptions_detected += 1;
    }
    report.rollbacks += 1;
    if !budget.charge() {
        return DriveAbort::Exhausted;
    }
    report.retries += 1;
    DriveAbort::Restart
}

#[allow(clippy::too_many_arguments)]
fn run_level_attempt(
    dev: &mut Device,
    a: &SolverArrays,
    strategy: BackwardStrategy,
    cfg: &SolverConfig,
    checkpointing: bool,
    report: &mut FaultReport,
    budget: &mut RetryBudget,
    cancel: Option<&AtomicBool>,
    obs: &Obs,
) -> Result<SolveResult, DriveAbort> {
    let wall0 = Instant::now();
    let mut sess = match GpuSession::with_obs(dev, a, strategy, None, obs.clone()) {
        Ok(s) => s,
        Err(e) => return Err(setup_abort(e, report, budget)),
    };
    let init_v = vec![a.source; a.len()];
    let out = drive(&mut sess, cfg, &init_v, checkpointing, report, budget, cancel, obs);
    report.checkpoint_us += sess.recovery_us();
    let out = out?;
    let timing = sess.timing(wall0);
    Ok(SolveResult {
        v: a.levels.unpermute(&out.v_pos),
        j: a.levels.unpermute(&out.j_pos),
        iterations: out.iterations,
        status: out.status,
        residual: out.residual,
        residual_history: out.residual_history,
        timing,
        fault_report: None,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_jump_attempt(
    dev: &mut Device,
    a: &JumpArrays,
    cfg: &SolverConfig,
    checkpointing: bool,
    report: &mut FaultReport,
    budget: &mut RetryBudget,
    cancel: Option<&AtomicBool>,
    obs: &Obs,
) -> Result<SolveResult, DriveAbort> {
    let wall0 = Instant::now();
    let mut sess = match JumpSession::with_obs(dev, a, obs.clone()) {
        Ok(s) => s,
        Err(e) => return Err(setup_abort(e, report, budget)),
    };
    let init_v = vec![a.source; a.len()];
    let out = drive(&mut sess, cfg, &init_v, checkpointing, report, budget, cancel, obs);
    report.checkpoint_us += sess.recovery_us();
    let out = out?;
    let timing = sess.timing(wall0);
    Ok(SolveResult {
        v: a.dfs.unpermute(&out.v_pos),
        j: a.dfs.unpermute(&out.j_pos),
        iterations: out.iterations,
        status: out.status,
        residual: out.residual,
        residual_history: out.residual_history,
        timing,
        fault_report: None,
    })
}

/// Fault-tolerant three-phase solver.
///
/// The three-phase GPU solver has no checkpointed session, so the
/// policy is simpler and stricter: retry whole solves on fresh devices
/// until one completes with *zero* recorded faults (provably clean),
/// then accept it; device loss or budget exhaustion degrades straight
/// to the serial three-phase reference.
pub struct Resilient3Solver {
    props: DeviceProps,
    host: HostProps,
    plan: Option<FaultPlan>,
    degrade: bool,
    recorder: Option<Recorder>,
}

impl Resilient3Solver {
    /// Creates a supervisor for the three-phase GPU solver.
    pub fn new(props: DeviceProps, host: HostProps) -> Self {
        Resilient3Solver { props, host, plan: None, degrade: true, recorder: None }
    }

    /// Attaches a telemetry recorder (see [`ResilientSolver::with_recorder`]).
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Arms a fault plan (see [`ResilientSolver::with_fault_plan`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Enables or disables degradation to the serial reference.
    pub fn with_degradation(mut self, degrade: bool) -> Self {
        self.degrade = degrade;
        self
    }

    /// Solves, recovering from injected faults.
    pub fn solve(
        &mut self,
        net: &ThreePhaseNetwork,
        cfg: &SolverConfig,
    ) -> Result<Solve3Result, ResilienceError> {
        if cfg.validate().is_err() {
            return Ok(crate::three_phase::invalid_config_result3(
                net.num_buses(),
                net.source_voltage(),
            ));
        }
        let a = Arrays3::new(net);
        let mut faults_total = 0u32;
        let mut budget = RetryBudget::new(cfg.max_recoveries);
        let mut last_lost: Option<DeviceError> = None;
        loop {
            let mut dev = Device::new(self.props.clone());
            if let Some(plan) = &self.plan {
                dev.arm_faults(plan.clone());
            }
            let mut solver = Gpu3Solver::new(dev);
            if let Some(rec) = &self.recorder {
                solver = solver.with_recorder(rec.clone());
            }
            let attempt = catch_unwind(AssertUnwindSafe(|| solver.solve_arrays(&a, cfg)));
            let faults = solver.device().fault_log().len() as u32;
            faults_total += faults;
            let lost = solver.device().is_lost();
            if let Ok(res) = attempt {
                if faults == 0 && !lost {
                    // Provably clean attempt: accept.
                    let mut res = res;
                    if budget.used() > 0 && res.status == SolveStatus::Converged {
                        res.status = SolveStatus::Recovered {
                            faults: faults_total,
                            retries: budget.used(),
                        };
                    }
                    return Ok(res);
                }
            }
            if lost {
                last_lost =
                    Some(DeviceError::DeviceLost { at_op: 0 });
            }
            if !budget.charge() {
                break;
            }
        }
        if !self.degrade {
            return Err(match last_lost {
                Some(e) => ResilienceError::DeviceLost(e),
                None => ResilienceError::BudgetExhausted { retries: budget.used() },
            });
        }
        let mut fallback = Serial3Solver::new(self.host.clone());
        if let Some(rec) = &self.recorder {
            fallback = fallback.with_recorder(rec.clone());
        }
        let mut res = fallback.solve_arrays(&a, cfg);
        if res.status == SolveStatus::Converged {
            res.status =
                SolveStatus::Recovered { faults: faults_total, retries: budget.used() };
        }
        Ok(res)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuSolver;
    use powergrid::ieee::ieee13;
    use simt::FaultKind;

    fn rig() -> (DeviceProps, HostProps) {
        (DeviceProps::paper_rig(), HostProps::paper_rig())
    }

    #[test]
    fn retry_budget_exhausts() {
        let mut b = RetryBudget::new(2);
        assert!(b.charge());
        assert!(b.charge());
        assert!(!b.charge());
        assert_eq!(b.used(), 2);
    }

    #[test]
    fn fallback_chain_ends_at_serial() {
        assert_eq!(Backend::Gpu.fallback(), Some(Backend::Multicore));
        assert_eq!(Backend::GpuJump.fallback(), Some(Backend::Multicore));
        assert_eq!(Backend::Multicore.fallback(), Some(Backend::Serial));
        assert_eq!(Backend::Serial.fallback(), None);
    }

    #[test]
    fn backend_names_round_trip() {
        for b in [
            Backend::Serial,
            Backend::Multicore,
            Backend::Gpu,
            Backend::GpuDirect,
            Backend::GpuAtomic,
            Backend::GpuJump,
        ] {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name("fpga"), None);
    }

    #[test]
    fn fault_free_resilient_gpu_matches_plain_gpu_exactly() {
        let net = ieee13();
        let cfg = SolverConfig::default();
        let (props, host) = rig();
        let plain = GpuSolver::new(Device::new(props.clone())).solve(&net, &cfg);
        let res = ResilientSolver::new(Backend::Gpu, props, host)
            .solve(&net, &cfg)
            .expect("clean run cannot fail");
        assert_eq!(res.status, SolveStatus::Converged);
        assert_eq!(res.iterations, plain.iterations);
        assert_eq!(res.v, plain.v, "fault-free supervisor run must be bit-identical");
        let report = res.fault_report.expect("supervisor attaches a report");
        assert_eq!(report.faults_injected, 0);
        assert_eq!(report.checkpoints, 0, "no plan armed means no checkpoint traffic");
        assert_eq!(report.backends, vec!["gpu".to_string()]);
    }

    #[test]
    fn seeded_faults_recover_to_the_fault_free_answer() {
        let net = ieee13();
        let cfg = SolverConfig::default();
        let (props, host) = rig();
        let plain = GpuSolver::new(Device::new(props.clone())).solve(&net, &cfg);
        let plan = FaultPlan::seeded(20200817, 0.02);
        let mut solver =
            ResilientSolver::new(Backend::Gpu, props, host).with_fault_plan(plan);
        let res = solver.solve(&net, &cfg).expect("recoverable faults must not error");
        assert!(res.status.is_converged(), "got {}", res.status);
        let scale = net.source_voltage().abs();
        for (a, b) in res.v.iter().zip(&plain.v) {
            assert!((*a - *b).abs() <= 1e-9 * scale, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn device_loss_degrades_to_multicore_with_the_right_answer() {
        let net = ieee13();
        let cfg = SolverConfig::default();
        let (props, host) = rig();
        let serial = SerialSolver::new(host.clone()).solve(&net, &cfg);
        // Op 30 lands mid-solve on every level backend.
        let plan = FaultPlan::scripted([(30, FaultKind::DeviceLost { at_op: 0 })]);
        let mut solver =
            ResilientSolver::new(Backend::Gpu, props, host).with_fault_plan(plan);
        let res = solver.solve(&net, &cfg).expect("degradation must rescue the solve");
        let report = res.fault_report.clone().expect("report");
        assert!(report.degraded(), "backends: {:?}", report.backends);
        assert_eq!(report.backends, vec!["gpu".to_string(), "multicore".to_string()]);
        assert!(matches!(res.status, SolveStatus::Recovered { .. }), "got {}", res.status);
        let scale = net.source_voltage().abs();
        for (a, b) in res.v.iter().zip(&serial.v) {
            assert!((*a - *b).abs() <= 1e-9 * scale);
        }
    }

    #[test]
    fn device_loss_without_degradation_is_an_error() {
        let net = ieee13();
        let cfg = SolverConfig::default();
        let (props, host) = rig();
        let plan = FaultPlan::scripted([(30, FaultKind::DeviceLost { at_op: 0 })]);
        let mut solver = ResilientSolver::new(Backend::Gpu, props, host)
            .with_fault_plan(plan)
            .with_degradation(false);
        let err = solver.solve(&net, &cfg).expect_err("loss with degradation off");
        assert!(matches!(err, ResilienceError::DeviceLost(_)), "got {err}");
        assert!(err.to_string().contains("unrecoverable"));
    }

    #[test]
    fn cpu_backends_pass_through_unchanged() {
        let net = ieee13();
        let cfg = SolverConfig::default();
        let (props, host) = rig();
        let serial = SerialSolver::new(host.clone()).solve(&net, &cfg);
        let res = ResilientSolver::new(Backend::Serial, props, host)
            .solve(&net, &cfg)
            .unwrap();
        assert_eq!(res.status, SolveStatus::Converged);
        assert_eq!(res.v, serial.v);
        assert_eq!(res.fault_report.unwrap().backends, vec!["serial".to_string()]);
    }
}
