//! Request/response robustness layer over the resilient solvers.
//!
//! [`crate::ResilientSolver`] makes one solve survive device faults;
//! this module makes a *stream* of solves survive a faulty device,
//! overload, and hung work. It wraps the single-phase, three-phase and
//! batch solvers behind a small service with four policies:
//!
//! * **Deadlines.** Every request carries a modeled-time budget
//!   ([`crate::SolverConfig::deadline_us`], defaulted from
//!   [`ServiceConfig::deadline`]) checked against the [`simt`] timeline
//!   each iteration; a solve that runs past it returns its partial state
//!   as [`SolveStatus::DeadlineExceeded`]. A separate wall-clock
//!   *watchdog* thread guards the single-phase device path against hung
//!   simulation: it sets a cooperative cancel flag that the recovery
//!   loop polls at each convergence check. The watchdog never touches
//!   the device, so arming it does not perturb the fault stream.
//! * **Retry with backoff.** Transient device failures (an in-solve
//!   recovery budget running dry, a loud batch fault) are retried up to
//!   [`ServiceConfig::max_retries`] times with exponential backoff plus
//!   seeded jitter. The backoff is *modeled* time — recorded on the
//!   response and added to its service cost — so replays are exact.
//!   This budget is distinct from the in-solve rollback budget
//!   ([`crate::SolverConfig::max_recoveries`]): that one bounds
//!   checkpoint rollbacks inside an attempt, this one bounds whole-solve
//!   re-submissions.
//! * **Circuit breaker.** After [`ServiceConfig::breaker_threshold`]
//!   consecutive unrecoverable device failures the breaker *opens* and
//!   new requests route straight to the CPU fallback (multicore for
//!   single-phase and batch, serial for three-phase — both reproduce the
//!   device answer to reference accuracy). After
//!   [`ServiceConfig::breaker_probe_after`] open-served requests the
//!   breaker goes *half-open* and the next request probes the device:
//!   success closes the breaker, failure re-opens it. Every transition
//!   is recorded as a [`simt::EventKind::Marker`] on the service
//!   timeline.
//! * **Bounded admission.** The queue holds at most
//!   [`ServiceConfig::queue_capacity`] requests; arrivals beyond that
//!   are shed with [`Outcome::Rejected`] carrying the observed queue
//!   depth. [`SolveService::drain`] serves whatever is queued on
//!   shutdown, in order.
//!
//! Everything is deterministic: the same request stream, fault-plan
//! seed and service seed reproduce identical statuses, retry counts and
//! breaker transitions, because no decision reads the wall clock (the
//! watchdog, when armed, only accelerates an abort that the modeled
//! deadline would eventually take).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicBool;
use std::sync::{mpsc, Arc};
use std::time::Duration;

use numc::Complex;
use powergrid::three_phase::ThreePhaseNetwork;
use powergrid::RadialNetwork;
use rng::rngs::StdRng;
use rng::{Rng, SeedableRng};
use simt::{Device, DeviceError, DeviceProps, FaultPlan, HostProps, Timeline};

use telemetry::trace::ArgValue;
use telemetry::{Recorder, Trace};

use crate::arrays::SolverArrays;
use crate::batch::{BatchResult, BatchSolver};
use crate::config::SolverConfig;
use crate::recovery::{Backend, Resilient3Solver, ResilienceError, ResilientSolver};
use crate::report::{SolveResult, Timing};
use crate::status::SolveStatus;
use crate::three_phase::{Serial3Solver, Solve3Result};

/// A per-request time budget.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Deadline {
    /// Modeled-time budget, µs, applied to any request whose own
    /// [`SolverConfig::deadline_us`] is unset. `None` = unbounded.
    pub modeled_us: Option<f64>,
    /// Wall-clock watchdog for the single-phase device path. `None`
    /// disarms the watchdog (required for bit-exact replay timing
    /// independence, though decisions stay deterministic either way).
    pub wall: Option<Duration>,
}

impl Deadline {
    /// No budget at all.
    pub fn none() -> Self {
        Deadline::default()
    }

    /// A modeled-time budget only.
    pub fn modeled_us(us: f64) -> Self {
        assert!(us > 0.0 && us.is_finite(), "deadline must be positive and finite");
        Deadline { modeled_us: Some(us), wall: None }
    }

    /// Adds a wall-clock watchdog.
    pub fn with_wall(mut self, wall: Duration) -> Self {
        self.wall = Some(wall);
        self
    }
}

/// Tunables of one [`SolveService`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Backend device attempts run on (default [`Backend::Gpu`]).
    pub backend: Backend,
    /// Maximum queued (not yet started) requests; arrivals beyond this
    /// are shed with [`Outcome::Rejected`].
    pub queue_capacity: usize,
    /// Service-level retries per request for *transient* device
    /// failures, distinct from the in-solve rollback budget.
    pub max_retries: u32,
    /// First backoff interval, modeled µs (doubles per retry).
    pub backoff_base_us: u64,
    /// Backoff ceiling, modeled µs (jitter is added on top).
    pub backoff_cap_us: u64,
    /// Consecutive unrecoverable device failures that open the breaker.
    pub breaker_threshold: u32,
    /// Requests served on the fallback while open before the breaker
    /// goes half-open and probes the device again.
    pub breaker_probe_after: u32,
    /// Serve CPU fallback after device failure / while open (default
    /// true). With `false`, exhausted requests return
    /// [`Outcome::Failed`] instead — strict device-only mode.
    pub fallback: bool,
    /// Seed for the backoff jitter stream (replayable).
    pub seed: u64,
    /// Default per-request deadline.
    pub deadline: Deadline,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            backend: Backend::Gpu,
            queue_capacity: 16,
            max_retries: 3,
            backoff_base_us: 64,
            backoff_cap_us: 4096,
            breaker_threshold: 3,
            breaker_probe_after: 4,
            fallback: true,
            seed: 0x5eed,
            deadline: Deadline::none(),
        }
    }
}

/// Circuit-breaker state over the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Device healthy: requests attempt the device.
    Closed,
    /// Device written off: requests route straight to the CPU fallback.
    Open,
    /// Probation: the next request probes the device; success closes
    /// the breaker, failure re-opens it.
    HalfOpen,
}

impl BreakerState {
    /// Marker/report name.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// One unit of work submitted to the service.
#[derive(Clone, Debug)]
pub enum Request {
    /// Single-phase solve.
    Solve {
        /// The network to solve.
        net: RadialNetwork,
        /// Solver configuration (deadline defaulted from the service).
        cfg: SolverConfig,
    },
    /// Unbalanced three-phase solve.
    Solve3 {
        /// The three-phase network to solve.
        net: ThreePhaseNetwork,
        /// Solver configuration (deadline defaulted from the service).
        cfg: SolverConfig,
    },
    /// Batched scenario solve on one topology.
    Batch {
        /// The shared topology.
        net: RadialNetwork,
        /// Per-scenario by-bus load vectors.
        scenarios: Vec<Vec<Complex>>,
        /// Solver configuration (deadline defaulted from the service).
        cfg: SolverConfig,
    },
}

/// How a request ended.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Single-phase result (possibly recovered, deadline-cut, or served
    /// by the fallback — see [`SolveResult::status`] and
    /// [`Response::backend`]).
    Solved(SolveResult),
    /// Three-phase result.
    Solved3(Solve3Result),
    /// Batch result.
    Batch(BatchResult),
    /// Shed at admission: the queue was full.
    Rejected {
        /// Queue depth observed when the request was shed.
        queue_depth: usize,
    },
    /// Device failed unrecoverably and the fallback is disabled.
    Failed(ResilienceError),
}

/// A served (or shed) request.
#[derive(Clone, Debug)]
pub struct Response {
    /// Request id (assigned at submission, dense per service).
    pub id: u64,
    /// What happened.
    pub outcome: Outcome,
    /// Service-level retries spent on transient device failures.
    pub retries: u32,
    /// Total modeled backoff the retries waited, µs.
    pub backoff_us: u64,
    /// What served the request: the device backend name, the fallback
    /// name, or `"shed"`.
    pub backend: &'static str,
    /// Breaker state when the response was produced.
    pub breaker: BreakerState,
}

impl Response {
    /// The solve status, when the request ran at all.
    pub fn status(&self) -> Option<SolveStatus> {
        match &self.outcome {
            Outcome::Solved(r) => Some(r.status),
            Outcome::Solved3(r) => Some(r.status),
            Outcome::Batch(r) => Some(r.worst_status()),
            Outcome::Rejected { .. } | Outcome::Failed(_) => None,
        }
    }

    /// Modeled µs this response occupied the server (solve time plus
    /// backoff; zero for shed requests).
    pub fn service_us(&self) -> f64 {
        let solve = match &self.outcome {
            Outcome::Solved(r) => r.timing.total_us(),
            Outcome::Solved3(r) => r.timing.total_us(),
            Outcome::Batch(r) => r.timing.total_us(),
            Outcome::Rejected { .. } | Outcome::Failed(_) => 0.0,
        };
        solve + self.backoff_us as f64
    }
}

/// Aggregate service counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests offered (admitted + shed).
    pub submitted: u64,
    /// Requests served to completion (any outcome but `Rejected`).
    pub served: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Device attempts that produced a result.
    pub device_successes: u64,
    /// Unrecoverable device failures (breaker fuel).
    pub device_failures: u64,
    /// Requests served by the CPU fallback.
    pub fallback_served: u64,
    /// Service-level transient retries across all requests.
    pub retries: u64,
    /// Closed/half-open → open transitions.
    pub breaker_opens: u64,
    /// Half-open → closed transitions.
    pub breaker_closes: u64,
    /// Device probes launched from the open state.
    pub probes: u64,
    /// Largest queue depth observed at admission.
    pub peak_queue_depth: usize,
}

/// Where a request is sent on this pass.
enum Route {
    Device,
    Fallback,
}

/// Classified device failure.
struct DeviceFailure {
    transient: bool,
    err: ResilienceError,
}

/// The robustness service: deadlines, retry, breaker, bounded queue.
pub struct SolveService {
    cfg: ServiceConfig,
    props: DeviceProps,
    host: HostProps,
    plan: Option<FaultPlan>,
    timeline: Timeline,
    rng: StdRng,
    breaker: BreakerState,
    consecutive_failures: u32,
    open_served: u32,
    queue: VecDeque<(u64, Request)>,
    next_id: u64,
    stats: ServiceStats,
    recorder: Option<Recorder>,
    /// Modeled service clock, µs: advanced by each response's service
    /// time (or pinned to stream time in [`SolveService::run_stream`]).
    /// Stamps service-track telemetry events.
    clock_us: f64,
    /// Set while draining: admitted work is owed an answer, so device
    /// failures route to the CPU fallback even in strict device-only
    /// mode (`fallback: false`).
    draining: bool,
    /// Telemetry track the service records on (default
    /// [`Trace::TID_SERVICE`]; fleets give each worker its own track).
    tid: u32,
    /// Prefix for telemetry metric names (default `"service"`).
    label: String,
    /// Fleet ordinal of the device this service drives, stamped onto
    /// the device timelines it creates (`None` for a lone service).
    ordinal: Option<u32>,
}

impl SolveService {
    /// Creates a service over the given hardware models.
    pub fn new(cfg: ServiceConfig, props: DeviceProps, host: HostProps) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        SolveService {
            cfg,
            props,
            host,
            plan: None,
            timeline: Timeline::default(),
            rng,
            breaker: BreakerState::Closed,
            consecutive_failures: 0,
            open_served: 0,
            queue: VecDeque::new(),
            next_id: 0,
            stats: ServiceStats::default(),
            recorder: None,
            clock_us: 0.0,
            draining: false,
            tid: Trace::TID_SERVICE,
            label: "service".to_string(),
            ordinal: None,
        }
    }

    /// Tags devices created by this service with a fleet ordinal so
    /// exported timelines carry per-device labels.
    pub fn set_device_ordinal(&mut self, ordinal: u32) {
        self.ordinal = Some(ordinal);
    }

    /// Moves the service's telemetry onto its own track and metric
    /// prefix — a fleet gives each device worker a distinct track
    /// (e.g. `fleet.d0` on [`Trace::tid_for_device`]) so merged traces
    /// keep per-device request lanes apart.
    pub fn with_track(mut self, tid: u32, label: &str) -> Self {
        self.tid = tid;
        self.label = label.to_string();
        if let Some(rec) = &self.recorder {
            rec.name_thread(tid, &format!("{label} (modeled)"));
        }
        self
    }

    /// Arms a fault plan; every device the service creates gets a clone
    /// (clones share the op counter, so the fault stream continues
    /// across requests and retries instead of replaying).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.set_fault_plan(plan);
        self
    }

    /// [`Self::with_fault_plan`] for a service already in place (the
    /// fleet arms plans per worker after construction).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = Some(plan);
    }

    /// Clears the fault plan: subsequent attempts run on clean devices.
    pub fn clear_fault_plan(&mut self) {
        self.plan = None;
    }

    /// Attaches a telemetry recorder: per-request spans, queue-depth
    /// samples, shed/retry counters and breaker transitions are recorded
    /// on the service track, stamped with the modeled service clock.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.set_recorder(rec);
        self
    }

    /// [`Self::with_recorder`] for a service already in place.
    pub fn set_recorder(&mut self, rec: Recorder) {
        rec.name_thread(self.tid, &format!("{} (modeled)", self.label));
        self.recorder = Some(rec);
    }

    /// The service timeline: breaker transitions and shed requests as
    /// [`simt::EventKind::Marker`] events, in arrival order.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Current breaker state.
    pub fn breaker(&self) -> BreakerState {
        self.breaker
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Requests admitted but not yet served.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Offers a request. Returns its id, or — when the queue is full —
    /// the shed [`Response`] with [`Outcome::Rejected`].
    // The large Err *is* the payload: a shed request's full response,
    // handed back at admission so the caller never waits for it.
    #[allow(clippy::result_large_err)]
    pub fn submit(&mut self, req: Request) -> Result<u64, Response> {
        self.stats.submitted += 1;
        self.stats.peak_queue_depth = self.stats.peak_queue_depth.max(self.queue.len());
        if let Some(rec) = &self.recorder {
            rec.counter_sample("service.queue_depth", self.clock_us, self.queue.len() as f64);
        }
        if self.queue.len() >= self.cfg.queue_capacity {
            let id = self.take_id();
            return Err(self.shed(id));
        }
        let id = self.take_id();
        self.queue.push_back((id, req));
        Ok(id)
    }

    /// Serves the oldest queued request, if any.
    pub fn process_one(&mut self) -> Option<Response> {
        let (id, req) = self.queue.pop_front()?;
        Some(self.execute(id, req))
    }

    /// Graceful shutdown: serves everything still queued, in order.
    ///
    /// Admitted work is owed an answer, so while draining an
    /// unrecoverable device failure (e.g. a sticky device loss) routes
    /// the request to the CPU fallback even in strict device-only mode
    /// (`fallback: false`) instead of failing it with the device error.
    pub fn drain(&mut self) -> Vec<Response> {
        self.draining = true;
        let mut out = Vec::with_capacity(self.queue.len());
        while let Some(resp) = self.process_one() {
            out.push(resp);
        }
        self.draining = false;
        self.publish_stats();
        out
    }

    /// Serves one request immediately at modeled time `start_us`,
    /// bypassing the queue — the entry point for an external scheduler
    /// (the fleet) that owns admission and timing itself.
    pub fn serve_at(&mut self, start_us: f64, req: Request) -> Response {
        self.stats.submitted += 1;
        let id = self.take_id();
        self.clock_us = start_us;
        self.execute(id, req)
    }

    /// Serves `req` straight on the CPU fallback at modeled time
    /// `start_us`, never touching the device — the fleet's last rung
    /// when every device has refused a request.
    pub fn serve_cpu_at(&mut self, start_us: f64, req: Request) -> Response {
        self.stats.submitted += 1;
        self.stats.served += 1;
        let id = self.take_id();
        self.clock_us = start_us;
        let resp = self.serve_fallback(id, &req, 0, 0);
        self.clock_us = start_us + resp.service_us();
        resp
    }

    /// Publishes the cumulative [`ServiceStats`] as gauges
    /// (`<label>.stats.*`) on the attached recorder, so run-summary
    /// JSON carries breaker transition, shed and retry counts without
    /// re-parsing traces. Gauges are idempotent — safe to call after
    /// every stream, drain, or at any checkpoint.
    pub fn publish_stats(&self) {
        let Some(rec) = &self.recorder else { return };
        let s = &self.stats;
        let l = &self.label;
        rec.gauge_set(&format!("{l}.stats.submitted"), s.submitted as f64);
        rec.gauge_set(&format!("{l}.stats.served"), s.served as f64);
        rec.gauge_set(&format!("{l}.stats.shed"), s.shed as f64);
        rec.gauge_set(
            &format!("{l}.stats.device_successes"),
            s.device_successes as f64,
        );
        rec.gauge_set(
            &format!("{l}.stats.device_failures"),
            s.device_failures as f64,
        );
        rec.gauge_set(
            &format!("{l}.stats.fallback_served"),
            s.fallback_served as f64,
        );
        rec.gauge_set(&format!("{l}.stats.retries"), s.retries as f64);
        rec.gauge_set(&format!("{l}.stats.breaker_opens"), s.breaker_opens as f64);
        rec.gauge_set(&format!("{l}.stats.breaker_closes"), s.breaker_closes as f64);
        rec.gauge_set(&format!("{l}.stats.probes"), s.probes as f64);
        rec.gauge_set(
            &format!("{l}.stats.peak_queue_depth"),
            s.peak_queue_depth as f64,
        );
    }

    /// Replays a timed arrival stream through a single-server queue and
    /// returns every response (served and shed), in completion order.
    ///
    /// `arrivals` are `(modeled µs, request)` pairs with non-decreasing
    /// times. The server takes requests FIFO; each occupies it for the
    /// response's [`Response::service_us`]. An arrival that finds
    /// [`ServiceConfig::queue_capacity`] requests still waiting is shed.
    /// Whatever remains at the end of the stream is drained (graceful
    /// shutdown). Entirely deterministic in modeled time.
    pub fn run_stream(&mut self, arrivals: Vec<(f64, Request)>) -> Vec<Response> {
        let mut waiting: VecDeque<(u64, Request, f64)> = VecDeque::new();
        let mut responses = Vec::new();
        let mut server_free_at = 0.0f64;
        let mut last_t = f64::NEG_INFINITY;
        for (t, req) in arrivals {
            assert!(t >= last_t, "arrival times must be non-decreasing");
            last_t = t;
            // Start (and finish) everything the server picks up before
            // this arrival; a request in service no longer holds a
            // queue slot.
            while let Some(&(_, _, arrived)) = waiting.front() {
                let start = server_free_at.max(arrived);
                if start >= t {
                    break;
                }
                let (id, r, _) = waiting.pop_front().expect("front exists");
                self.clock_us = start;
                let resp = self.execute(id, r);
                server_free_at = start + resp.service_us();
                responses.push(resp);
            }
            self.stats.submitted += 1;
            self.stats.peak_queue_depth =
                self.stats.peak_queue_depth.max(waiting.len());
            self.clock_us = self.clock_us.max(t);
            if let Some(rec) = &self.recorder {
                rec.counter_sample("service.queue_depth", t, waiting.len() as f64);
            }
            if waiting.len() >= self.cfg.queue_capacity {
                let id = self.take_id();
                responses.push(self.shed(id));
                continue;
            }
            let id = self.take_id();
            waiting.push_back((id, req, t));
        }
        // Graceful drain: the stream is over but admitted work is owed
        // an answer (device failures fall back, as in [`Self::drain`]).
        self.draining = true;
        while let Some((id, r, arrived)) = waiting.pop_front() {
            self.clock_us = server_free_at.max(arrived);
            let resp = self.execute(id, r);
            server_free_at = server_free_at.max(arrived) + resp.service_us();
            responses.push(resp);
        }
        self.draining = false;
        self.publish_stats();
        responses
    }

    fn take_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn shed(&mut self, id: u64) -> Response {
        let depth = self.queue.len().max(self.cfg.queue_capacity);
        self.stats.shed += 1;
        self.timeline.note(format!("shed id={id} depth={depth}"));
        if let Some(rec) = &self.recorder {
            rec.counter_add("service.shed", 1);
            rec.instant_with(
                self.tid,
                "service",
                "shed",
                self.clock_us,
                vec![
                    ("id".to_string(), ArgValue::U64(id)),
                    ("queue_depth".to_string(), ArgValue::U64(depth as u64)),
                ],
            );
        }
        Response {
            id,
            outcome: Outcome::Rejected { queue_depth: depth },
            retries: 0,
            backoff_us: 0,
            backend: "shed",
            breaker: self.breaker,
        }
    }

    fn set_breaker(&mut self, to: BreakerState, why: &str) {
        let from = self.breaker;
        self.breaker = to;
        self.timeline.note(format!("breaker {}→{} ({why})", from.name(), to.name()));
        if let Some(rec) = &self.recorder {
            rec.counter_add(&format!("service.breaker.{}", to.name()), 1);
            rec.instant_with(
                self.tid,
                "service",
                "breaker",
                self.clock_us,
                vec![
                    ("from".to_string(), ArgValue::from(from.name())),
                    ("to".to_string(), ArgValue::from(to.name())),
                    ("why".to_string(), ArgValue::from(why)),
                ],
            );
        }
    }

    /// Fills in the service default deadline when the request brought
    /// none of its own.
    fn effective_cfg(&self, cfg: &SolverConfig) -> SolverConfig {
        let mut c = *cfg;
        if c.deadline_us.is_none() {
            c.deadline_us = self.cfg.deadline.modeled_us;
        }
        c
    }

    /// Exponential backoff for retry `attempt` (1-based) with seeded
    /// jitter in `[0, base)`.
    fn next_backoff(&mut self, attempt: u32) -> u64 {
        let base = self.cfg.backoff_base_us.max(1);
        let exp = base.saturating_mul(1u64 << (attempt - 1).min(32));
        exp.min(self.cfg.backoff_cap_us.max(base)) + self.rng.gen_below(base)
    }

    /// Routing decision for one device pass, advancing the open→
    /// half-open probation counter.
    fn route(&mut self) -> Route {
        match self.breaker {
            BreakerState::Closed | BreakerState::HalfOpen => Route::Device,
            BreakerState::Open => {
                self.open_served += 1;
                if self.open_served >= self.cfg.breaker_probe_after {
                    self.set_breaker(BreakerState::HalfOpen, "probe window elapsed");
                    self.stats.probes += 1;
                    Route::Device
                } else {
                    Route::Fallback
                }
            }
        }
    }

    fn on_device_success(&mut self) {
        self.stats.device_successes += 1;
        self.consecutive_failures = 0;
        if self.breaker == BreakerState::HalfOpen {
            self.stats.breaker_closes += 1;
            self.open_served = 0;
            self.set_breaker(BreakerState::Closed, "probe succeeded");
        }
    }

    fn on_device_failure(&mut self) {
        self.stats.device_failures += 1;
        match self.breaker {
            BreakerState::HalfOpen => {
                self.stats.breaker_opens += 1;
                self.open_served = 0;
                self.set_breaker(BreakerState::Open, "probe failed");
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.breaker_threshold {
                    self.stats.breaker_opens += 1;
                    self.open_served = 0;
                    self.set_breaker(
                        BreakerState::Open,
                        &format!("{} consecutive failures", self.consecutive_failures),
                    );
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Serves one request end to end: route, attempt, retry, breaker
    /// bookkeeping, fallback. Records the request as a span on the
    /// service track and advances the modeled service clock.
    fn execute(&mut self, id: u64, req: Request) -> Response {
        let t0 = self.clock_us;
        let resp = self.execute_inner(id, req);
        self.clock_us = t0 + resp.service_us();
        if let Some(rec) = &self.recorder {
            rec.span_with(
                self.tid,
                "service",
                "request",
                t0,
                resp.service_us(),
                vec![
                    ("id".to_string(), ArgValue::U64(resp.id)),
                    ("backend".to_string(), ArgValue::from(resp.backend)),
                    ("retries".to_string(), ArgValue::U64(u64::from(resp.retries))),
                ],
            );
            rec.observe("service.request_us", resp.service_us());
            rec.counter_sample("service.queue_depth", self.clock_us, self.queue.len() as f64);
        }
        resp
    }

    fn execute_inner(&mut self, id: u64, req: Request) -> Response {
        self.stats.served += 1;
        let mut retries = 0u32;
        let mut backoff_us = 0u64;
        loop {
            if matches!(self.route(), Route::Fallback) {
                return self.serve_fallback(id, &req, retries, backoff_us);
            }
            match self.attempt_device(&req) {
                Ok(outcome) => {
                    self.on_device_success();
                    return Response {
                        id,
                        outcome,
                        retries,
                        backoff_us,
                        backend: self.cfg.backend.name(),
                        breaker: self.breaker,
                    };
                }
                Err(f) if f.transient && retries < self.cfg.max_retries => {
                    retries += 1;
                    self.stats.retries += 1;
                    let wait = self.next_backoff(retries);
                    backoff_us += wait;
                    if let Some(rec) = &self.recorder {
                        rec.counter_add("service.retries", 1);
                        rec.counter_add("service.backoff_us", wait);
                    }
                }
                Err(f) => {
                    self.on_device_failure();
                    if self.cfg.fallback || self.draining {
                        return self.serve_fallback(id, &req, retries, backoff_us);
                    }
                    return Response {
                        id,
                        outcome: Outcome::Failed(f.err),
                        retries,
                        backoff_us,
                        backend: self.cfg.backend.name(),
                        breaker: self.breaker,
                    };
                }
            }
        }
    }

    /// One device attempt. `Err` is classified transient (worth a
    /// service-level retry) or unrecoverable (breaker fuel).
    fn attempt_device(&mut self, req: &Request) -> Result<Outcome, DeviceFailure> {
        match req {
            Request::Solve { net, cfg } => {
                let cfg = self.effective_cfg(cfg);
                let mut solver =
                    ResilientSolver::new(self.cfg.backend, self.props.clone(), self.host.clone())
                        .with_degradation(false);
                if let Some(plan) = &self.plan {
                    solver = solver.with_fault_plan(plan.clone());
                }
                if let Some(rec) = &self.recorder {
                    solver = solver.with_recorder(rec.clone());
                }
                let attempt = if let Some(wall) = self.cfg.deadline.wall {
                    let cancel = Arc::new(AtomicBool::new(false));
                    solver = solver.with_cancel(Arc::clone(&cancel));
                    with_watchdog(wall, &cancel, || solver.solve(net, &cfg))
                } else {
                    solver.solve(net, &cfg)
                };
                match attempt {
                    Ok(res) => Ok(Outcome::Solved(res)),
                    Err(err) => {
                        let transient =
                            matches!(err, ResilienceError::BudgetExhausted { .. });
                        Err(DeviceFailure { transient, err })
                    }
                }
            }
            Request::Solve3 { net, cfg } => {
                let cfg = self.effective_cfg(cfg);
                let mut solver =
                    Resilient3Solver::new(self.props.clone(), self.host.clone())
                        .with_degradation(false);
                if let Some(plan) = &self.plan {
                    solver = solver.with_fault_plan(plan.clone());
                }
                if let Some(rec) = &self.recorder {
                    solver = solver.with_recorder(rec.clone());
                }
                match solver.solve(net, &cfg) {
                    Ok(res) => Ok(Outcome::Solved3(res)),
                    Err(err) => {
                        let transient =
                            matches!(err, ResilienceError::BudgetExhausted { .. });
                        Err(DeviceFailure { transient, err })
                    }
                }
            }
            Request::Batch { net, scenarios, cfg } => {
                let cfg = self.effective_cfg(cfg);
                let mut dev = Device::new(self.props.clone());
                if let Some(d) = self.ordinal {
                    dev = dev.with_ordinal(d);
                }
                if let Some(plan) = &self.plan {
                    dev.arm_faults(plan.clone());
                }
                let mut solver = BatchSolver::new(dev);
                if let Some(rec) = &self.recorder {
                    solver = solver.with_recorder(rec.clone());
                }
                // Corrupted index buffers can panic inside a kernel;
                // that is a loud device fault, not a service bug.
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    solver.try_solve(net, scenarios, &cfg)
                }));
                let lost = solver.device().is_lost();
                match attempt {
                    // The tensor engine degrades to its host path when
                    // the device dies mid-batch and still returns a
                    // result. In strict mode (`fallback: false`) the
                    // point is to surface sickness to an external
                    // supervisor (the fleet reclaims the work on a
                    // peer), so a mid-batch loss is a failure there.
                    Ok(Ok(res)) if self.cfg.fallback || !lost => Ok(Outcome::Batch(res)),
                    Ok(Ok(_)) => Err(DeviceFailure {
                        transient: false,
                        err: ResilienceError::DeviceLost(DeviceError::DeviceLost {
                            at_op: 0,
                        }),
                    }),
                    Ok(Err(e @ DeviceError::DeviceLost { .. })) => Err(DeviceFailure {
                        transient: false,
                        err: ResilienceError::DeviceLost(e),
                    }),
                    Ok(Err(_)) | Err(_) if !lost => Err(DeviceFailure {
                        transient: true,
                        err: ResilienceError::BudgetExhausted { retries: 0 },
                    }),
                    _ => Err(DeviceFailure {
                        transient: false,
                        err: ResilienceError::DeviceLost(DeviceError::DeviceLost {
                            at_op: 0,
                        }),
                    }),
                }
            }
        }
    }

    /// Serves a request on the CPU fallback (multicore for single-phase
    /// and batch, serial for three-phase). CPU solvers cannot fault, so
    /// this always produces a result — matching the serial reference to
    /// working precision.
    fn serve_fallback(
        &mut self,
        id: u64,
        req: &Request,
        retries: u32,
        backoff_us: u64,
    ) -> Response {
        self.stats.fallback_served += 1;
        let (outcome, backend) = match req {
            Request::Solve { net, cfg } => {
                let cfg = self.effective_cfg(cfg);
                let mut solver = ResilientSolver::new(
                    Backend::Multicore,
                    self.props.clone(),
                    self.host.clone(),
                );
                if let Some(rec) = &self.recorder {
                    solver = solver.with_recorder(rec.clone());
                }
                let res = solver.solve(net, &cfg).expect("CPU fallback cannot fail");
                (Outcome::Solved(res), "multicore")
            }
            Request::Solve3 { net, cfg } => {
                let cfg = self.effective_cfg(cfg);
                let mut solver = Serial3Solver::new(self.host.clone());
                if let Some(rec) = &self.recorder {
                    solver = solver.with_recorder(rec.clone());
                }
                let res = solver.solve(net, &cfg);
                (Outcome::Solved3(res), "serial")
            }
            Request::Batch { net, scenarios, cfg } => {
                let cfg = self.effective_cfg(cfg);
                (Outcome::Batch(batch_on_multicore(&self.host, net, scenarios, &cfg)), "multicore")
            }
        };
        Response { id, outcome, retries, backoff_us, backend, breaker: self.breaker }
    }
}

/// Runs `f` under a wall-clock watchdog: a helper thread waits `wall`;
/// if `f` has not finished by then the cancel flag is set and the
/// recovery loop returns its partial state as
/// [`SolveStatus::DeadlineExceeded`] at the next convergence check. The
/// watchdog performs no device operations, so the fault stream is
/// identical whether or not it fires.
fn with_watchdog<T>(wall: Duration, cancel: &Arc<AtomicBool>, f: impl FnOnce() -> T) -> T {
    let (done_tx, done_rx) = mpsc::channel::<()>();
    let flag = Arc::clone(cancel);
    let guard = std::thread::spawn(move || {
        if done_rx.recv_timeout(wall).is_err() {
            flag.store(true, std::sync::atomic::Ordering::Relaxed);
        }
    });
    let out = f();
    let _ = done_tx.send(());
    let _ = guard.join();
    out
}

/// The breaker-open batch path: every scenario solved independently on
/// the multicore CPU solver, reassembled into a [`BatchResult`].
fn batch_on_multicore(
    host: &HostProps,
    net: &RadialNetwork,
    scenarios: &[Vec<Complex>],
    cfg: &SolverConfig,
) -> BatchResult {
    assert!(!scenarios.is_empty(), "batch must contain at least one scenario");
    let base = SolverArrays::new(net);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mc = crate::multicore::MulticoreSolver::new(host.clone(), cores);
    let mut v = Vec::with_capacity(scenarios.len());
    let mut j = Vec::with_capacity(scenarios.len());
    let mut statuses = Vec::with_capacity(scenarios.len());
    let mut iterations = 0u32;
    let mut residual = 0.0f64;
    let mut timing = Timing::default();
    for (s, scenario) in scenarios.iter().enumerate() {
        assert_eq!(
            scenario.len(),
            base.len(),
            "scenario {s} has {} loads for {} buses",
            scenario.len(),
            base.len()
        );
        let mut a = base.clone();
        for (p, &bus) in base.levels.order.iter().enumerate() {
            a.s[p] = scenario[bus as usize];
        }
        let res = mc.solve_arrays(&a, cfg);
        iterations = iterations.max(res.iterations);
        if res.residual.is_nan() || res.residual > residual {
            residual = res.residual;
        }
        timing.phases.setup_us += res.timing.phases.setup_us;
        timing.phases.injection_us += res.timing.phases.injection_us;
        timing.phases.backward_us += res.timing.phases.backward_us;
        timing.phases.forward_us += res.timing.phases.forward_us;
        timing.phases.convergence_us += res.timing.phases.convergence_us;
        timing.phases.teardown_us += res.timing.phases.teardown_us;
        timing.wall_us += res.timing.wall_us;
        statuses.push(res.status);
        v.push(res.v);
        j.push(res.j);
    }
    BatchResult { v, j, iterations, statuses, residual, timing, fault_report: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powergrid::ieee::ieee13;
    use simt::FaultKind;

    fn rig() -> (DeviceProps, HostProps) {
        (DeviceProps::paper_rig(), HostProps::paper_rig())
    }

    fn solve_req() -> Request {
        Request::Solve { net: ieee13(), cfg: SolverConfig::default() }
    }

    fn service(cfg: ServiceConfig) -> SolveService {
        let (props, host) = rig();
        SolveService::new(cfg, props, host)
    }

    #[test]
    fn clean_service_serves_on_the_device() {
        let mut svc = service(ServiceConfig::default());
        let id = svc.submit(solve_req()).expect("admitted");
        let resp = svc.process_one().expect("queued work");
        assert_eq!(resp.id, id);
        assert_eq!(resp.backend, "gpu");
        assert_eq!(resp.breaker, BreakerState::Closed);
        assert_eq!(resp.status(), Some(SolveStatus::Converged));
        assert_eq!(resp.retries, 0);
        assert_eq!(svc.stats().device_successes, 1);
    }

    #[test]
    fn queue_overflow_sheds_with_depth() {
        let cfg = ServiceConfig { queue_capacity: 2, ..ServiceConfig::default() };
        let mut svc = service(cfg);
        assert!(svc.submit(solve_req()).is_ok());
        assert!(svc.submit(solve_req()).is_ok());
        let shed = svc.submit(solve_req()).expect_err("third must shed");
        assert!(matches!(shed.outcome, Outcome::Rejected { queue_depth: 2 }));
        assert_eq!(shed.backend, "shed");
        assert_eq!(svc.stats().shed, 1);
        // Draining serves the two admitted requests in order.
        let served = svc.drain();
        assert_eq!(served.len(), 2);
        assert!(served[0].id < served[1].id);
    }

    #[test]
    fn repeated_device_loss_opens_breaker_and_probe_readmits() {
        // Device loss on every attempt: op indices spaced so each fresh
        // device dies mid-solve.
        let kills: Vec<(u64, FaultKind)> =
            (0..64).map(|k| (5 + 7 * k, FaultKind::DeviceLost { at_op: 0 })).collect();
        let plan = FaultPlan::scripted(kills);
        let cfg = ServiceConfig {
            breaker_threshold: 2,
            breaker_probe_after: 2,
            max_retries: 0,
            ..ServiceConfig::default()
        };
        let mut svc = service(cfg).with_fault_plan(plan);
        // Two failures open the breaker; both requests still get served
        // by the fallback.
        for _ in 0..2 {
            svc.submit(solve_req()).unwrap();
            let resp = svc.process_one().unwrap();
            assert_eq!(resp.backend, "multicore");
            assert_eq!(resp.status(), Some(SolveStatus::Converged));
        }
        assert_eq!(svc.breaker(), BreakerState::Open);
        assert_eq!(svc.stats().breaker_opens, 1);
        // One request served while open (probe_after = 2 ⇒ the second
        // open request probes; the script kills that probe too, so the
        // breaker re-opens).
        svc.submit(solve_req()).unwrap();
        let r = svc.process_one().unwrap();
        assert_eq!(r.breaker, BreakerState::Open);
        svc.submit(solve_req()).unwrap();
        let probe = svc.process_one().unwrap();
        assert_eq!(probe.backend, "multicore", "failed probe falls back");
        assert_eq!(svc.breaker(), BreakerState::Open, "probe failure re-opens");
        assert_eq!(svc.stats().probes, 1);
        assert_eq!(svc.stats().breaker_opens, 2);
        let notes = svc
            .timeline()
            .events()
            .iter()
            .filter(|e| e.label() == "<marker>")
            .count();
        assert!(notes >= 3, "transitions recorded on the timeline, got {notes}");
    }

    #[test]
    fn breaker_open_answers_match_serial_to_reference_accuracy() {
        let net = ieee13();
        let scfg = SolverConfig::default();
        let serial = crate::serial::SerialSolver::new(HostProps::paper_rig())
            .solve(&net, &scfg);
        let kills: Vec<(u64, FaultKind)> =
            (0..8).map(|k| (5 + 7 * k, FaultKind::DeviceLost { at_op: 0 })).collect();
        let cfg = ServiceConfig {
            breaker_threshold: 1,
            breaker_probe_after: 100,
            max_retries: 0,
            ..ServiceConfig::default()
        };
        let mut svc = service(cfg).with_fault_plan(FaultPlan::scripted(kills));
        svc.submit(solve_req()).unwrap();
        svc.process_one().unwrap();
        assert_eq!(svc.breaker(), BreakerState::Open);
        svc.submit(solve_req()).unwrap();
        let resp = svc.process_one().unwrap();
        let Outcome::Solved(res) = resp.outcome else { panic!("expected a solve") };
        let scale = net.source_voltage().abs();
        for (a, b) in res.v.iter().zip(&serial.v) {
            assert!((*a - *b).abs() <= 1e-9 * scale, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn probe_success_closes_the_breaker() {
        // Exactly two kills: enough to open a threshold-2 breaker, then
        // a clean device for the probe.
        let plan = FaultPlan::scripted([
            (5, FaultKind::DeviceLost { at_op: 0 }),
            (12, FaultKind::DeviceLost { at_op: 0 }),
        ]);
        let cfg = ServiceConfig {
            breaker_threshold: 2,
            breaker_probe_after: 1,
            max_retries: 0,
            ..ServiceConfig::default()
        };
        let mut svc = service(cfg).with_fault_plan(plan);
        for _ in 0..2 {
            svc.submit(solve_req()).unwrap();
            svc.process_one().unwrap();
        }
        assert_eq!(svc.breaker(), BreakerState::Open);
        // probe_after = 1 ⇒ the very next request probes a now-clean
        // device and closes the breaker.
        svc.submit(solve_req()).unwrap();
        let probe = svc.process_one().unwrap();
        assert_eq!(probe.backend, "gpu");
        assert_eq!(svc.breaker(), BreakerState::Closed);
        assert_eq!(svc.stats().breaker_closes, 1);
    }

    #[test]
    fn deterministic_replay_of_a_faulty_stream() {
        let run = || {
            let plan = FaultPlan::seeded(20260806, 0.01);
            let cfg = ServiceConfig { seed: 99, ..ServiceConfig::default() };
            let mut svc = service(cfg).with_fault_plan(plan);
            let arrivals: Vec<(f64, Request)> =
                (0..6).map(|k| (k as f64 * 50.0, solve_req())).collect();
            let responses = svc.run_stream(arrivals);
            let fingerprint: Vec<(u64, Option<SolveStatus>, u32, u64, &'static str)> =
                responses
                    .iter()
                    .map(|r| (r.id, r.status(), r.retries, r.backoff_us, r.backend))
                    .collect();
            let transitions: Vec<String> = svc
                .timeline()
                .events()
                .iter()
                .filter_map(|e| match &e.kind {
                    simt::EventKind::Marker { desc } => Some(desc.clone()),
                    _ => None,
                })
                .collect();
            (fingerprint, transitions, *svc.stats())
        };
        let (f1, t1, s1) = run();
        let (f2, t2, s2) = run();
        assert_eq!(f1, f2, "statuses/retries/backends must replay exactly");
        assert_eq!(t1, t2, "breaker transitions must replay exactly");
        assert_eq!(s1, s2, "counters must replay exactly");
    }

    #[test]
    fn overload_stream_sheds_and_drains() {
        let cfg = ServiceConfig { queue_capacity: 2, ..ServiceConfig::default() };
        let mut svc = service(cfg);
        // A burst at t=0 far beyond capacity: the first request may
        // start immediately; the rest fight for 2 queue slots.
        let arrivals: Vec<(f64, Request)> = (0..8).map(|_| (0.0, solve_req())).collect();
        let responses = svc.run_stream(arrivals);
        assert_eq!(responses.len(), 8, "every request gets a response");
        let shed = responses
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Rejected { .. }))
            .count();
        assert!(shed >= 5, "burst must shed most of the queue, shed {shed}");
        let served = responses.len() - shed;
        assert!(served >= 2, "admitted work is served on drain");
        assert_eq!(svc.stats().shed as usize, shed);
    }

    #[test]
    fn service_deadline_defaults_into_requests() {
        let cfg = ServiceConfig {
            deadline: Deadline::modeled_us(1e-3),
            ..ServiceConfig::default()
        };
        let mut svc = service(cfg);
        svc.submit(solve_req()).unwrap();
        let resp = svc.process_one().unwrap();
        match resp.status() {
            Some(SolveStatus::DeadlineExceeded { at_iteration, .. }) => {
                assert!(at_iteration >= 1, "partial progress is reported");
            }
            other => panic!("expected deadline exceeded, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_thread_sets_the_cancel_flag_on_timeout() {
        use std::sync::atomic::Ordering;
        let cancel = Arc::new(AtomicBool::new(false));
        // The work outlives the watchdog window: the flag must be set.
        let out = with_watchdog(Duration::from_millis(5), &cancel, || {
            std::thread::sleep(Duration::from_millis(40));
            42
        });
        assert_eq!(out, 42, "the work itself still completes");
        assert!(cancel.load(Ordering::Relaxed), "watchdog must fire");
        // Fast work beats the watchdog: the flag stays clear.
        let cancel2 = Arc::new(AtomicBool::new(false));
        let _ = with_watchdog(Duration::from_secs(30), &cancel2, || 1);
        assert!(!cancel2.load(Ordering::Relaxed), "unfired watchdog leaves no trace");
    }

    #[test]
    fn cancel_flag_aborts_a_device_solve_with_partial_state() {
        use std::sync::atomic::Ordering;
        // Pre-set flag: the recovery loop must notice it at the first
        // convergence check and return the partial state — exactly what
        // a fired watchdog produces, minus the wall-clock race.
        let (props, host) = rig();
        let cancel = Arc::new(AtomicBool::new(true));
        let mut solver = ResilientSolver::new(Backend::Gpu, props, host)
            .with_degradation(false)
            .with_cancel(Arc::clone(&cancel));
        let res = solver
            .solve(&ieee13(), &SolverConfig::default())
            .expect("cancel is not a device failure");
        match res.status {
            SolveStatus::DeadlineExceeded { at_iteration, .. } => {
                assert_eq!(at_iteration, 1, "cancelled at the first check");
                assert_eq!(res.iterations, 1);
                assert!(res.residual.is_finite(), "partial state is real data");
            }
            other => panic!("expected deadline-exceeded, got {other}"),
        }
        assert!(cancel.load(Ordering::Relaxed));
    }

    #[test]
    fn three_phase_and_batch_requests_are_served() {
        use powergrid::three_phase::ieee13_unbalanced;
        let mut svc = service(ServiceConfig::default());
        svc.submit(Request::Solve3 {
            net: ieee13_unbalanced(),
            cfg: SolverConfig::default(),
        })
        .unwrap();
        let r3 = svc.process_one().unwrap();
        assert_eq!(r3.status(), Some(SolveStatus::Converged));

        let net = ieee13();
        let loads: Vec<Complex> = net.buses().iter().map(|b| b.load).collect();
        svc.submit(Request::Batch {
            net,
            scenarios: vec![loads.clone(), loads.iter().map(|&l| l * 0.5).collect()],
            cfg: SolverConfig::default(),
        })
        .unwrap();
        let rb = svc.process_one().unwrap();
        let Outcome::Batch(b) = rb.outcome else { panic!("expected batch") };
        assert!(b.converged());
        assert_eq!(b.statuses.len(), 2);
    }

    #[test]
    fn batch_fallback_matches_device_batch() {
        let net = ieee13();
        let cfg = SolverConfig::default();
        let loads: Vec<Complex> = net.buses().iter().map(|b| b.load).collect();
        let scenarios = vec![loads.clone(), loads.iter().map(|&l| l * 1.2).collect()];
        let mut dev_solver = BatchSolver::new(Device::new(DeviceProps::paper_rig()));
        let dev = dev_solver.solve(&net, &scenarios, &cfg);
        let cpu = batch_on_multicore(&HostProps::paper_rig(), &net, &scenarios, &cfg);
        assert!(dev.converged() && cpu.converged());
        let scale = net.source_voltage().abs();
        for s in 0..2 {
            for bus in 0..net.num_buses() {
                assert!(
                    (dev.v[s][bus] - cpu.v[s][bus]).abs() <= 1e-4 * scale,
                    "scenario {s} bus {bus}"
                );
            }
        }
    }

    #[test]
    fn drain_reroutes_queued_work_to_fallback_after_sticky_loss() {
        // Strict device-only service whose device dies on every attempt.
        let kills: Vec<(u64, FaultKind)> =
            (0..64).map(|k| (5 + 7 * k, FaultKind::DeviceLost { at_op: 0 })).collect();
        let cfg = ServiceConfig {
            fallback: false,
            max_retries: 0,
            breaker_threshold: 100,
            ..ServiceConfig::default()
        };
        let mut svc = service(cfg).with_fault_plan(FaultPlan::scripted(kills.clone()));
        // Outside a drain, strict mode surfaces the device error.
        svc.submit(solve_req()).unwrap();
        let direct = svc.process_one().unwrap();
        assert!(matches!(direct.outcome, Outcome::Failed(_)), "strict mode fails");
        // But admitted work at shutdown is owed an answer: drained
        // requests re-route to the CPU fallback instead of failing.
        for _ in 0..3 {
            svc.submit(solve_req()).unwrap();
        }
        let drained = svc.drain();
        assert_eq!(drained.len(), 3);
        for resp in &drained {
            assert_eq!(resp.backend, "multicore", "drain must fall back");
            assert_eq!(resp.status(), Some(SolveStatus::Converged));
        }
    }

    #[test]
    fn publish_stats_exports_breaker_and_shed_counts_as_gauges() {
        let kills: Vec<(u64, FaultKind)> =
            (0..64).map(|k| (5 + 7 * k, FaultKind::DeviceLost { at_op: 0 })).collect();
        let cfg = ServiceConfig {
            breaker_threshold: 1,
            queue_capacity: 1,
            max_retries: 0,
            ..ServiceConfig::default()
        };
        let rec = telemetry::Recorder::new();
        let mut svc = service(cfg)
            .with_fault_plan(FaultPlan::scripted(kills))
            .with_recorder(rec.clone());
        // Burst at t=0: one in service, one queued, the rest shed; the
        // dying device opens the breaker along the way.
        let arrivals: Vec<(f64, Request)> = (0..6).map(|_| (0.0, solve_req())).collect();
        let responses = svc.run_stream(arrivals);
        assert_eq!(responses.len(), 6);
        let (_, metrics) = rec.snapshot();
        let s = svc.stats();
        assert_eq!(metrics.gauge("service.stats.shed"), Some(s.shed as f64));
        assert!(s.breaker_opens >= 1);
        assert_eq!(
            metrics.gauge("service.stats.breaker_opens"),
            Some(s.breaker_opens as f64)
        );
        assert_eq!(metrics.gauge("service.stats.retries"), Some(s.retries as f64));
        assert_eq!(metrics.gauge("service.stats.served"), Some(s.served as f64));
    }

    #[test]
    fn invalid_config_flows_through_the_service() {
        let bad = SolverConfig { max_iter: 0, ..SolverConfig::default() };
        let mut svc = service(ServiceConfig::default());
        svc.submit(Request::Solve { net: ieee13(), cfg: bad }).unwrap();
        let resp = svc.process_one().unwrap();
        assert_eq!(resp.status(), Some(SolveStatus::InvalidConfig));
    }
}
