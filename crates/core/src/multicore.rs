//! Level-parallel multicore CPU solver (ablation baseline).
//!
//! Answers the reviewer question the paper leaves open: *how much of the
//! GPU win is parallelism you could have had on the host?* Same
//! level-synchronous structure as the GPU solver, executed by host
//! threads over chunked level ranges with a barrier per level (realised
//! here as one `std::thread::scope` per parallel region).
//!
//! Modeled time: the serial roofline time of each region divided by the
//! effective core count, plus a per-region fork/join overhead — the
//! textbook bulk-synchronous model. Narrow levels (chains!) degenerate to
//! pure overhead, exactly like kernel launches do on the device.

use std::time::Instant;

use numc::Complex;
use powergrid::RadialNetwork;
use primitives::ops::{MaxAbsF64, ScanOp};
use simt::HostProps;

use telemetry::Recorder;

use crate::arrays::SolverArrays;
use crate::config::SolverConfig;
use crate::obs::Obs;
use crate::report::{PhaseTimes, SolveResult, Timing};
use crate::status::{ConvergenceMonitor, SolveStatus};

/// Work below this many buses runs inline instead of forking threads.
const PARALLEL_THRESHOLD: usize = 2048;

/// Modeled fork/join cost of one parallel region, µs.
const FORK_JOIN_US: f64 = 4.0;

/// The level-parallel multicore solver.
#[derive(Clone, Debug)]
pub struct MulticoreSolver {
    host: HostProps,
    cores: usize,
    recorder: Option<Recorder>,
}

impl MulticoreSolver {
    /// Creates a solver modeling `cores` host cores.
    pub fn new(host: HostProps, cores: usize) -> Self {
        assert!(cores >= 1, "need at least one core");
        MulticoreSolver { host, cores, recorder: None }
    }

    /// Attaches a telemetry recorder: per-iteration/per-phase spans and
    /// residual samples are recorded into it during every solve.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Modeled core count.
    pub fn cores(&self) -> usize {
        self.cores
    }

    fn region_time_us(&self, flops: u64, bytes: u64, parallelism: usize, working_set: u64) -> f64 {
        let eff = self.cores.min(parallelism.max(1)) as f64;
        let serial = self.host.region_time_us_ws(flops, bytes, working_set);
        if parallelism >= PARALLEL_THRESHOLD {
            serial / eff + FORK_JOIN_US
        } else {
            serial
        }
    }

    /// Solves a network from scratch.
    pub fn solve(&self, net: &RadialNetwork, cfg: &SolverConfig) -> SolveResult {
        let arrays = SolverArrays::new(net);
        self.solve_arrays(&arrays, cfg)
    }

    /// Solves with pre-built arrays.
    pub fn solve_arrays(&self, a: &SolverArrays, cfg: &SolverConfig) -> SolveResult {
        self.solve_warm(a, cfg, None)
    }

    /// Solves starting from a previous solution instead of the flat
    /// start (`v_init` is indexed by *bus id*), mirroring
    /// [`crate::SerialSolver::solve_warm`] — the mesh outer loop re-solves
    /// the same topology with updated loads every outer iteration.
    pub fn solve_warm(
        &self,
        a: &SolverArrays,
        cfg: &SolverConfig,
        v_init: Option<&[Complex]>,
    ) -> SolveResult {
        let wall0 = Instant::now();
        let n = a.len();
        let v0 = a.source;
        if cfg.validate().is_err() {
            return crate::report::invalid_config_result(n, v0);
        }
        let mut monitor = ConvergenceMonitor::new(cfg, v0.abs());

        let mut v = match v_init {
            Some(init) => {
                assert_eq!(init.len(), n, "warm start needs one voltage per bus");
                a.levels.permute(init)
            }
            None => vec![v0; n],
        };
        let mut i_inj = vec![Complex::ZERO; n];
        let mut j = vec![Complex::ZERO; n];
        let mut delta = vec![0.0f64; n];

        let ws = 112 * n as u64;
        let mut phases =
            PhaseTimes { setup_us: self.host.region_time_us(0, 128 * n as u64), ..Default::default() };

        let mut iterations = 0;
        let mut residual = f64::MAX;
        let mut residual_history = Vec::new();
        let mut status = SolveStatus::MaxIterations;
        let obs = Obs::new(self.recorder.as_ref(), "solver.multicore");

        while iterations < cfg.max_iter {
            iterations += 1;
            let iter_t0 = phases.total_us();

            // Injection: embarrassingly parallel over all buses.
            par_zip(&mut i_inj, |lo, out| {
                for (k, slot) in out.iter_mut().enumerate() {
                    let p = lo + k;
                    let s = a.s[p];
                    *slot = if s == Complex::ZERO { Complex::ZERO } else { (s / v[p]).conj() };
                }
            });
            phases.injection_us += self.region_time_us(12 * n as u64, 48 * n as u64, n, ws);
            obs.phase("injection", iter_t0, phases.total_us());
            let bwd_t0 = phases.total_us();

            // Backward sweep: parallel within each level, levels in
            // sequence (barrier between levels).
            for l in (0..a.num_levels()).rev() {
                let range = a.levels.level_range(l);
                let lo = range.start;
                let (head, tail) = j.split_at_mut(range.end);
                let (_, level_j) = head.split_at_mut(lo);
                let tail_base = range.end;
                let tail_ref: &[Complex] = tail;
                par_zip(level_j, |off, out| {
                    for (k, slot) in out.iter_mut().enumerate() {
                        let p = lo + off + k;
                        let mut acc = i_inj[p];
                        for c in a.child_lo[p] as usize..a.child_hi[p] as usize {
                            acc += tail_ref[c - tail_base];
                        }
                        *slot = acc;
                    }
                });
                phases.backward_us += self.region_time_us(
                    4 * range.len() as u64,
                    48 * range.len() as u64,
                    range.len(),
                    ws,
                );
            }

            obs.phase("backward", bwd_t0, phases.total_us());
            let fwd_t0 = phases.total_us();

            // Forward sweep: parallel within each level.
            for l in 1..a.num_levels() {
                let range = a.levels.level_range(l);
                let lo = range.start;
                let (head, level_v) = v.split_at_mut(lo);
                let level_v = &mut level_v[..range.len()];
                let head_ref: &[Complex] = head;
                let (d_head, d_level) = delta.split_at_mut(lo);
                let _ = d_head;
                let d_level = &mut d_level[..range.len()];
                par_zip2(level_v, d_level, |off, out_v, out_d| {
                    for k in 0..out_v.len() {
                        let p = lo + off + k;
                        let parent = a.parent_pos[p] as usize;
                        let new_v = head_ref[parent] - a.z[p] * j[p];
                        out_d[k] = (new_v - out_v[k]).abs();
                        out_v[k] = new_v;
                    }
                });
                phases.forward_us += self.region_time_us(
                    12 * range.len() as u64,
                    80 * range.len() as u64,
                    range.len(),
                    ws,
                );
            }

            obs.phase("forward", fwd_t0, phases.total_us());

            // Convergence: parallel max-reduce. `f64::max` drops NaN, so
            // the fold uses the NaN-propagating ∞-norm operator.
            let d = delta.iter().fold(0.0f64, |m, &x| MaxAbsF64::combine(m, x));
            phases.convergence_us += self.region_time_us(n as u64, 8 * n as u64, n, ws);

            residual = d;
            residual_history.push(d);
            obs.iteration(iterations, iter_t0, phases.total_us(), d);
            if let Some(s) = monitor.observe(iterations, d) {
                status = s;
                break;
            }
            if let Some(budget) = cfg.deadline_us {
                let elapsed = phases.total_us();
                if elapsed >= budget {
                    status = SolveStatus::DeadlineExceeded {
                        at_iteration: iterations,
                        elapsed_us: elapsed as u64,
                    };
                    break;
                }
            }
        }

        let timing =
            Timing { phases, transfer_us: 0.0,
            transfer_sweep_us: 0.0, wall_us: wall0.elapsed().as_secs_f64() * 1e6 };
        SolveResult {
            v: a.levels.unpermute(&v),
            j: a.levels.unpermute(&j),
            iterations,
            status,
            residual,
            residual_history,
            timing,
            fault_report: None,
        }
    }
}

impl Default for MulticoreSolver {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        MulticoreSolver::new(HostProps::paper_rig(), cores)
    }
}

/// Splits `out` into chunks processed by scoped threads; `f(offset,
/// chunk)` fills each chunk. Runs inline under the threshold.
fn par_zip<T: Send>(out: &mut [T], f: impl Fn(usize, &mut [T]) + Sync) {
    let n = out.len();
    if n < PARALLEL_THRESHOLD {
        f(0, out);
        return;
    }
    let workers = std::thread::available_parallelism().map(|w| w.get()).unwrap_or(1).min(8);
    let chunk = n.div_ceil(workers);
    std::thread::scope(|s| {
        for (ci, chunk_slice) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || f(ci * chunk, chunk_slice));
        }
    });
}

/// Two-output variant of [`par_zip`] (forward sweep writes V and ΔV).
fn par_zip2<A: Send, B: Send>(
    a: &mut [A],
    b: &mut [B],
    f: impl Fn(usize, &mut [A], &mut [B]) + Sync,
) {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < PARALLEL_THRESHOLD {
        f(0, a, b);
        return;
    }
    let workers = std::thread::available_parallelism().map(|w| w.get()).unwrap_or(1).min(8);
    let chunk = n.div_ceil(workers);
    std::thread::scope(|s| {
        for (ci, (ca, cb)) in a.chunks_mut(chunk).zip(b.chunks_mut(chunk)).enumerate() {
            let f = &f;
            s.spawn(move || f(ci * chunk, ca, cb));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialSolver;
    use powergrid::gen::{balanced_binary, chain, GenSpec};
    use powergrid::ieee::ieee13;
    use rng::rngs::StdRng;
    use rng::SeedableRng;

    fn mc() -> MulticoreSolver {
        MulticoreSolver::new(HostProps::paper_rig(), 8)
    }

    #[test]
    fn matches_serial_on_ieee13() {
        let net = ieee13();
        let cfg = SolverConfig::default();
        let s = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
        let m = mc().solve(&net, &cfg);
        assert!(m.converged());
        assert_eq!(m.iterations, s.iterations);
        for (a, b) in s.v.iter().zip(&m.v) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_serial_on_large_tree_crossing_parallel_threshold() {
        let mut rng = StdRng::seed_from_u64(17);
        // 8191 buses: the two deepest binary levels exceed the 2048
        // threshold, so the threaded path really runs.
        let net = balanced_binary(8191, &GenSpec::default(), &mut rng);
        let cfg = SolverConfig::default();
        let s = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
        let m = mc().solve(&net, &cfg);
        assert!(m.converged() && s.converged());
        for (a, b) in s.v.iter().zip(&m.v) {
            assert!((*a - *b).abs() < 1e-6);
        }
    }

    #[test]
    fn chain_gains_nothing_from_parallelism_in_the_model() {
        let mut rng = StdRng::seed_from_u64(23);
        let net = chain(3000, &GenSpec::default(), &mut rng);
        let cfg = SolverConfig::default();
        let s = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
        let m = mc().solve(&net, &cfg);
        // Levels of width 1 never parallelise; modeled sweep time can
        // only match or exceed serial (scalar overheads aside).
        assert!(m.timing.phases.backward_us >= 0.9 * s.timing.phases.backward_us);
    }

    #[test]
    fn more_cores_reduce_modeled_time_on_wide_trees() {
        let mut rng = StdRng::seed_from_u64(29);
        let net = balanced_binary(65_535, &GenSpec::default(), &mut rng);
        let cfg = SolverConfig::default();
        let m2 = MulticoreSolver::new(HostProps::paper_rig(), 2).solve(&net, &cfg);
        let m8 = MulticoreSolver::new(HostProps::paper_rig(), 8).solve(&net, &cfg);
        assert!(m8.timing.total_us() < m2.timing.total_us());
    }
}
