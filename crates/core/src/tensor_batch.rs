//! Tensor-batched power flow: scenario-major SoA state, fused
//! (level × batch) kernels, one launch per iteration.
//!
//! [`crate::BatchSolver`] amortises launch overhead per *level*: every
//! tree level of every iteration is its own kernel, so a depth-`L` solve
//! still pays `O(L)` launches per iteration regardless of batch size.
//! This module removes the per-level launches entirely by turning the
//! batch into a tensor:
//!
//! * **Scenario-major SoA layout** — every per-scenario array (voltages,
//!   branch currents, loads, residuals) is one slab indexed
//!   `g(s, p) = s·n + p`, where `p` is the level-order position. Adjacent
//!   threads touch adjacent positions of one scenario, so warp accesses
//!   coalesce exactly as in the single-scenario solver, and scenario `s`
//!   occupies one contiguous stripe.
//! * **Shared topology** — impedances, parent pointers, child ranges and
//!   the level table describe one tree and upload once per solve at size
//!   `n`, not `B·n`.
//! * **Fused sweeps** — one 2-D launch per *iteration*:
//!   `gridDim.y = B` (one block per scenario), with the tree levels of
//!   both sweep directions expressed as barrier phases *inside* the
//!   block. Injection fuses into the leaf-to-root accumulation; between
//!   the backward and forward halves each thread keeps the currents and
//!   previous voltages of its nodes in registers, so the forward ladder
//!   re-reads neither slab; and the per-scenario ∞-norm residual folds in
//!   shared memory and publishes one `f64` per scenario — the batched
//!   reduction collapses into the same launch.
//!
//! Per-scenario cost therefore approaches the bandwidth floor: the only
//! per-iteration traffic is one read of the load and voltage slabs, one
//! write of the current and voltage slabs, and one topology read — and
//! launch overhead is `1/B` launches per scenario per iteration.
//!
//! # Masking, early abort, determinism
//!
//! Every scenario owns a [`ConvergenceMonitor`]. The moment a scenario
//! converges, diverges, or goes non-finite it is *frozen*: its mask entry
//! drops to 0, the fused kernels skip its stripe (one 4-byte read per
//! block), and its state stays exactly as it was at the freezing
//! iteration. The loop aborts as soon as no scenario is active. Because a
//! scenario's trajectory depends only on its own stripe and it is frozen
//! at *its own* convergence iteration, results are byte-identical across
//! runs and across batch orderings, and `per_scenario_iterations[s]`
//! equals the iteration count the serial solver reports for the same
//! scenario.
//!
//! # Fault recovery
//!
//! Transient device errors retry the affected chunk from scratch (budget
//! [`SolverConfig::max_recoveries`]); a lost device degrades to the
//! serial solver per scenario. When a fault plan is armed, finished
//! chunks are *audited*: static buffers are read back and compared, and
//! one extra no-commit iteration per scenario (j and V into scratch
//! slabs) measures `max |ΔV|` via [`primitives::try_reduce_batched`] —
//! any scenario whose audit residual exceeds the tolerance, plus any
//! flagged failure, is re-solved on the host and reported as
//! [`SolveStatus::Recovered`]. Repaired scenarios return the serial
//! solver's state, so silent corruption cannot leak into results.
//!
//! # Scale
//!
//! Batches larger than device memory are processed in scenario chunks;
//! the topology stays resident across chunks. For Monte-Carlo-style
//! studies the per-scenario loads can be synthesised *on device* from the
//! base loads and one `f64` scale factor per scenario
//! ([`TensorBatchSolver::solve_scaled`]), eliminating the `B·n` load
//! upload; combined with [`TensorBatchSolver::stats_only`] (skip the
//! state download) the engine streams through hundreds of thousands of
//! scenarios.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use numc::Complex;
use powergrid::{DfsOrder, RadialNetwork};
use primitives::ops::{MaxAbsF64, ScanOp};
use primitives::{try_fill, try_reduce_batched};
use simt::{
    BlockScope, Device, DeviceBuffer, DeviceError, GlobalMut, GlobalRef, HostProps, Kernel,
    LaunchConfig,
};
use telemetry::Recorder;

use crate::arrays::SolverArrays;
use crate::config::SolverConfig;
use crate::obs::Obs;
use crate::report::{FaultReport, PhaseTimes, Timing};
use crate::serial::SerialSolver;
use crate::status::{ConvergenceMonitor, SolveStatus};

/// Threads per scenario block.
const TENSOR_BLOCK: u32 = 256;

/// Scenarios resident in one sweep block. The tree topology (impedances,
/// parent pointers, child ranges, base loads) is read once per node per
/// block and applied to every resident scenario's stripe, so topology
/// traffic per scenario falls by this factor. Two keeps the per-thread
/// local state (≈ 0.5 KB per scenario at 4K nodes / 256 threads) within
/// a plausible register/L1 budget.
const SCENARIOS_PER_BLOCK: usize = 2;

/// Upper bound on scenarios per chunk: bounds device *and* host footprint
/// (a chunk of 4K-bus scenarios is ~1 GB of state at this cap).
const MAX_CHUNK_SCENARIOS: usize = 8192;

/// Splits `n_scenarios` into at most `n_shards` contiguous ranges for
/// hand-off to several devices, each at least `min_shard` scenarios
/// (the final shard absorbs the remainder). Shard boundaries are
/// aligned down to the solver's chunk cap ([`MAX_CHUNK_SCENARIOS`])
/// whenever every shard stays ≥ `min_shard`, so a shard never ends
/// mid-chunk on the receiving device. Deterministic in its arguments.
pub fn shard_ranges(
    n_scenarios: usize,
    n_shards: usize,
    min_shard: usize,
) -> Vec<std::ops::Range<usize>> {
    assert!(n_shards > 0, "need at least one shard");
    let min_shard = min_shard.max(1);
    let shards = n_shards.min(n_scenarios / min_shard).max(1);
    let per = n_scenarios / shards;
    // Align interior boundaries to the chunk cap when the aligned size
    // still clears the floor; tiny shards keep the plain split.
    let step = if per >= MAX_CHUNK_SCENARIOS {
        per - per % MAX_CHUNK_SCENARIOS
    } else {
        per
    };
    let mut out = Vec::with_capacity(shards);
    let mut lo = 0usize;
    for s in 0..shards {
        let hi = if s + 1 == shards { n_scenarios } else { lo + step };
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// One scenario's topology delta for a patched solve
/// ([`TensorBatchSolver::solve_patched`]): the shared tree is uploaded
/// once and each scenario carries at most a few words describing how its
/// topology differs — no per-scenario arrays, no rebuild.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioPatch {
    /// Open the branch feeding this bus: its whole DFS subtree is
    /// de-energized (masked out of the sweeps and the residual) and the
    /// energized parent drops the subtree's branch current from its
    /// child sum. `None` leaves the topology intact.
    pub outage: Option<usize>,
    /// Replace the impedance of the branch feeding bus `.0` with `.1`.
    pub z_override: Option<(usize, Complex)>,
    /// Load scale applied to the base loads (`1.0` = base case). The
    /// scale is the only per-scenario load state, exactly as in
    /// [`TensorBatchSolver::solve_scaled`].
    pub scale: f64,
}

impl Default for ScenarioPatch {
    fn default() -> Self {
        ScenarioPatch { outage: None, z_override: None, scale: 1.0 }
    }
}

impl ScenarioPatch {
    /// The base case: no topology change, base loads.
    pub fn base() -> Self {
        Self::default()
    }

    /// An N-1 outage of the branch feeding `bus`, at base loads.
    pub fn outage(bus: usize) -> Self {
        ScenarioPatch { outage: Some(bus), ..Self::default() }
    }
}

/// Result of one tensor-batched solve.
#[derive(Clone, Debug)]
pub struct TensorBatchResult {
    /// Per-scenario bus voltages, `[scenario][bus id]`. Empty in
    /// [`TensorBatchSolver::stats_only`] mode.
    pub v: Vec<Vec<Complex>>,
    /// Per-scenario branch currents into each bus, `[scenario][bus id]`.
    /// Empty in stats-only mode.
    pub j: Vec<Vec<Complex>>,
    /// Iterations of the slowest scenario (the batch loop maximum).
    pub iterations: u32,
    /// Iterations each scenario actually ran before freezing — its own
    /// convergence/divergence iteration, not the batch maximum.
    pub per_scenario_iterations: Vec<u32>,
    /// Per-scenario outcome. Frozen scenarios carry their freeze
    /// iteration in the status payload (`at_iteration`).
    pub statuses: Vec<SolveStatus>,
    /// Final per-scenario `max |ΔV|`, volts.
    pub residuals: Vec<f64>,
    /// Batch-wide worst final residual (NaN-propagating fold), volts.
    pub residual: f64,
    /// Patched solves only: per-scenario minimum energized `|V|`, volts,
    /// taken over every non-root bus the sweeps updated (de-energized
    /// subtrees excluded). The screening headline — a contingency that
    /// converges but sags below a voltage floor is still a violation.
    /// Empty for unpatched solves; `+∞` for a single-bus network.
    pub min_v: Vec<f64>,
    /// Timing summary for the whole batch.
    pub timing: Timing,
    /// Modeled throughput: scenarios per modeled device second.
    pub scenarios_per_sec: f64,
    /// Populated when faults were observed or a fault plan was armed.
    pub fault_report: Option<FaultReport>,
}

impl TensorBatchResult {
    /// Whether *every* scenario converged (recovered counts).
    pub fn converged(&self) -> bool {
        self.statuses.iter().all(|s| s.is_converged())
    }

    /// The most severe scenario outcome (batch-wide summary).
    pub fn worst_status(&self) -> SolveStatus {
        self.statuses.iter().fold(SolveStatus::Converged, |w, &s| w.worse(s))
    }
}

/// Scenario loads for one solve.
enum Loads<'s> {
    /// Full by-bus load vectors, one per scenario.
    Explicit(&'s [Vec<Complex>]),
    /// `loads(s) = base × scales[s]` with the base loads from the arrays,
    /// synthesised on device (no `B·n` upload).
    Scaled(&'s [f64]),
}

impl Loads<'_> {
    fn len(&self) -> usize {
        match self {
            Loads::Explicit(s) => s.len(),
            Loads::Scaled(s) => s.len(),
        }
    }
}

/// The tensor-batched GPU solver.
pub struct TensorBatchSolver {
    device: Device,
    recorder: Option<Recorder>,
    chunk_cap: usize,
    keep_state: bool,
}

impl TensorBatchSolver {
    /// Creates a solver on the given device.
    pub fn new(device: Device) -> Self {
        TensorBatchSolver {
            device,
            recorder: None,
            chunk_cap: MAX_CHUNK_SCENARIOS,
            keep_state: true,
        }
    }

    /// Attaches a telemetry recorder: per-chunk spans, per-iteration
    /// residual samples, and batch throughput are recorded during every
    /// solve.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Caps scenarios per chunk (testing/tuning; clamped to ≥ 1).
    pub fn with_chunk_scenarios(mut self, cap: usize) -> Self {
        self.set_chunk_scenarios(cap);
        self
    }

    /// By-ref form of [`Self::with_chunk_scenarios`], for callers that
    /// plan the chunk size per solve (e.g. the contingency screener
    /// sizing chunks from the bus count).
    pub fn set_chunk_scenarios(&mut self, cap: usize) {
        self.chunk_cap = cap.max(1);
    }

    /// Skip the per-bus state download: `v`/`j` come back empty, only
    /// statuses, iterations and residuals are reported. This is the
    /// streaming mode for huge Monte Carlo batches.
    pub fn stats_only(mut self) -> Self {
        self.keep_state = false;
        self
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Solves `scenarios.len()` load scenarios over one network. Each
    /// scenario is a full by-bus load vector (`scenarios[s][bus]`, VA).
    /// Panics if the batch is empty or any scenario length differs from
    /// the bus count.
    pub fn solve(
        &mut self,
        net: &RadialNetwork,
        scenarios: &[Vec<Complex>],
        cfg: &SolverConfig,
    ) -> TensorBatchResult {
        let arrays = SolverArrays::new(net);
        self.solve_arrays(&arrays, scenarios, cfg)
    }

    /// Solves per-scenario scalings of the network's base loads:
    /// scenario `s` uses `load(bus) × scales[s]`. The scale factors are
    /// the only per-scenario upload.
    pub fn solve_scaled(
        &mut self,
        net: &RadialNetwork,
        scales: &[f64],
        cfg: &SolverConfig,
    ) -> TensorBatchResult {
        let arrays = SolverArrays::new(net);
        self.solve_scaled_arrays(&arrays, scales, cfg)
    }

    /// Solves with pre-built level-order arrays.
    pub fn solve_arrays(
        &mut self,
        a: &SolverArrays,
        scenarios: &[Vec<Complex>],
        cfg: &SolverConfig,
    ) -> TensorBatchResult {
        self.try_solve_arrays(a, scenarios, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`TensorBatchSolver::solve_scaled`] with pre-built arrays.
    pub fn solve_scaled_arrays(
        &mut self,
        a: &SolverArrays,
        scales: &[f64],
        cfg: &SolverConfig,
    ) -> TensorBatchResult {
        self.try_solve_scaled_arrays(a, scales, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`TensorBatchSolver::solve`]. Device weather is handled
    /// internally (retry, then host fallback), so an `Err` only escapes
    /// when recovery itself is impossible; batch-shape violations remain
    /// panics.
    pub fn try_solve(
        &mut self,
        net: &RadialNetwork,
        scenarios: &[Vec<Complex>],
        cfg: &SolverConfig,
    ) -> Result<TensorBatchResult, DeviceError> {
        let arrays = SolverArrays::new(net);
        self.try_solve_arrays(&arrays, scenarios, cfg)
    }

    /// Fallible [`TensorBatchSolver::solve_arrays`].
    pub fn try_solve_arrays(
        &mut self,
        a: &SolverArrays,
        scenarios: &[Vec<Complex>],
        cfg: &SolverConfig,
    ) -> Result<TensorBatchResult, DeviceError> {
        let n = a.len();
        for (s, sc) in scenarios.iter().enumerate() {
            assert_eq!(sc.len(), n, "scenario {s} has {} loads for {n} buses", sc.len());
        }
        self.solve_impl(a, Loads::Explicit(scenarios), cfg, None, None)
    }

    /// [`TensorBatchSolver::try_solve_arrays`] with a *per-scenario*
    /// warm start: scenario `s` begins its iteration from `warm[s]`
    /// (voltages by bus id) instead of the flat source profile. The
    /// natural feed is each scenario's own previous solution — an outer
    /// loop (compensation/PV updates, quasi-static time series) perturbs
    /// the loads a little each round, so the fixed point moves a little
    /// and the re-solve converges in a handful of iterations instead of
    /// paying the cold count every round.
    pub fn try_solve_arrays_warm(
        &mut self,
        a: &SolverArrays,
        scenarios: &[Vec<Complex>],
        cfg: &SolverConfig,
        warm: &[Vec<Complex>],
    ) -> Result<TensorBatchResult, DeviceError> {
        let n = a.len();
        assert_eq!(
            warm.len(),
            scenarios.len(),
            "warm profiles ({}) must match scenarios ({})",
            warm.len(),
            scenarios.len()
        );
        for (s, sc) in scenarios.iter().enumerate() {
            assert_eq!(sc.len(), n, "scenario {s} has {} loads for {n} buses", sc.len());
            assert_eq!(warm[s].len(), n, "scenario {s} warm profile needs one voltage per bus");
        }
        self.solve_impl(a, Loads::Explicit(scenarios), cfg, None, Some(warm))
    }

    /// Fallible [`TensorBatchSolver::solve_scaled_arrays`].
    pub fn try_solve_scaled_arrays(
        &mut self,
        a: &SolverArrays,
        scales: &[f64],
        cfg: &SolverConfig,
    ) -> Result<TensorBatchResult, DeviceError> {
        self.solve_impl(a, Loads::Scaled(scales), cfg, None, None)
    }

    /// Solves one topology *variant* per scenario over the shared base
    /// tree: each [`ScenarioPatch`] opens at most one branch (N-1
    /// outage), overrides at most one impedance, and scales the base
    /// loads. The tree uploads once; per-scenario state is a handful of
    /// words. `warm` optionally seeds every scenario's voltage iterate
    /// from a base-case profile (indexed by bus id) instead of the flat
    /// start — the batched counterpart of
    /// [`SerialSolver::solve_warm`].
    ///
    /// De-energized buses of an outage scenario report `V = 0`, `J = 0`
    /// (when state is kept) and are excluded from the residual and from
    /// [`TensorBatchResult::min_v`]. Panics on shape violations (bad bus
    /// ids, outage of the root).
    pub fn solve_patched(
        &mut self,
        net: &RadialNetwork,
        patches: &[ScenarioPatch],
        cfg: &SolverConfig,
        warm: Option<&[Complex]>,
    ) -> TensorBatchResult {
        self.try_solve_patched(net, patches, cfg, warm).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`TensorBatchSolver::solve_patched`].
    pub fn try_solve_patched(
        &mut self,
        net: &RadialNetwork,
        patches: &[ScenarioPatch],
        cfg: &SolverConfig,
        warm: Option<&[Complex]>,
    ) -> Result<TensorBatchResult, DeviceError> {
        let arrays = SolverArrays::new(net);
        let dfs = DfsOrder::new(net);
        self.try_solve_patched_arrays(&arrays, &dfs, patches, cfg, warm)
    }

    /// [`TensorBatchSolver::solve_patched`] with pre-built level-order
    /// arrays and DFS order (both over the *same* network).
    pub fn try_solve_patched_arrays(
        &mut self,
        a: &SolverArrays,
        dfs: &DfsOrder,
        patches: &[ScenarioPatch],
        cfg: &SolverConfig,
        warm: Option<&[Complex]>,
    ) -> Result<TensorBatchResult, DeviceError> {
        let plan = PatchPlan::build(a, dfs, patches, warm);
        self.solve_impl(a, Loads::Scaled(&plan.scales), cfg, Some(&plan), None)
    }

    fn solve_impl(
        &mut self,
        a: &SolverArrays,
        loads: Loads<'_>,
        cfg: &SolverConfig,
        patches: Option<&PatchPlan>,
        warm: Option<&[Vec<Complex>]>,
    ) -> Result<TensorBatchResult, DeviceError> {
        let wall0 = Instant::now();
        let nb = loads.len();
        assert!(nb >= 1, "batch must contain at least one scenario");
        let n = a.len();
        let v0 = a.source;

        if cfg.validate().is_err() {
            return Ok(TensorBatchResult {
                v: if self.keep_state { vec![vec![v0; n]; nb] } else { Vec::new() },
                j: if self.keep_state { vec![vec![Complex::ZERO; n]; nb] } else { Vec::new() },
                iterations: 0,
                per_scenario_iterations: vec![0; nb],
                statuses: vec![SolveStatus::InvalidConfig; nb],
                residuals: vec![f64::INFINITY; nb],
                residual: f64::INFINITY,
                min_v: if patches.is_some() { vec![f64::INFINITY; nb] } else { Vec::new() },
                timing: Timing::default(),
                scenarios_per_sec: 0.0,
                fault_report: None,
            });
        }

        let obs = Obs::new(self.recorder.as_ref(), "solver.tensor-batch");
        let armed = self.device.fault_plan().is_some();
        let faults_before = self.device.fault_log().len();
        let chunk_cap = self.chunk_cap.min(nb);

        let mut out = Outcome::new(nb, self.keep_state);
        let mut phases = PhaseTimes::default();
        let mut transfer_us = 0.0;
        let mut transfer_sweep_us = 0.0;
        let mut retries_total = 0u32;
        let mut corruptions_total = 0u32;
        let mut degraded = false;

        // ---- Topology upload (once; re-done only on chunk retry).
        // Transient faults (injected alloc-OOM, transfer failures) get
        // the retry budget; a device that stays broken degrades every
        // chunk to the host path below.
        let mark = self.device.timeline().mark();
        let mut topo = None;
        for attempt in 0..=cfg.max_recoveries {
            if self.device.is_lost() {
                break;
            }
            match Topology::upload(&mut self.device, a, patches) {
                Ok(t) => {
                    topo = Some(t);
                    break;
                }
                Err(_) => {
                    if attempt < cfg.max_recoveries {
                        retries_total += 1;
                    }
                }
            }
        }
        let b = self.device.timeline().breakdown_since(mark);
        phases.setup_us += b.total_us();
        transfer_us += b.htod_us + b.dtoh_us;

        let mut chunk_start = 0usize;
        while chunk_start < nb {
            let chunk = chunk_cap.min(nb - chunk_start);
            let range = chunk_start..chunk_start + chunk;
            let chunk_t0 = phases.total_us();

            // Retry the chunk on transient faults; degrade to the host
            // when the device is lost or the budget runs out — device
            // weather never escapes as an `Err`.
            let mut attempts = 0u32;
            loop {
                if topo.is_none() || self.device.is_lost() {
                    degraded = true;
                    break;
                }
                // Corrupted index buffers can drive a kernel out of
                // bounds; the engine propagates the panic, which is just
                // another device fault: catch it and restart the chunk.
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    run_chunk(
                        &mut self.device,
                        a,
                        topo.as_ref().expect("topology resident"),
                        &loads,
                        patches,
                        warm,
                        range.clone(),
                        cfg,
                        armed,
                        &obs,
                        &mut phases,
                        &mut transfer_us,
                        &mut transfer_sweep_us,
                        &mut out,
                    )
                }));
                if matches!(attempt, Ok(Err(DeviceError::TransferCorrupted { .. }))) {
                    corruptions_total += 1;
                    obs.instant("corruption-detected", phases.total_us());
                }
                match attempt {
                    Ok(Ok(())) => break,
                    Ok(Err(_)) | Err(_) if self.device.is_lost() => {
                        degraded = true;
                        break;
                    }
                    Ok(Err(_)) | Err(_) => {
                        if attempts >= cfg.max_recoveries {
                            degraded = true;
                            break;
                        }
                        attempts += 1;
                        retries_total += 1;
                        obs.instant("chunk-retry", phases.total_us());
                        // Re-upload the topology: the fault may have
                        // corrupted resident buffers.
                        let mark = self.device.timeline().mark();
                        match Topology::upload(&mut self.device, a, patches) {
                            Ok(t) => topo = Some(t),
                            Err(_) => {
                                degraded = true;
                                topo = None;
                            }
                        }
                        let b = self.device.timeline().breakdown_since(mark);
                        phases.setup_us += b.total_us();
                        transfer_us += b.htod_us + b.dtoh_us;
                        if degraded {
                            break;
                        }
                    }
                }
            }

            if degraded {
                // Host fallback for every scenario of this chunk.
                let t0 = phases.total_us();
                let serial = SerialSolver::new(HostProps::paper_rig());
                for s in range.clone() {
                    let res = repair_solve(&serial, a, &loads, patches, warm, s, cfg);
                    out.absorb_serial(s, res, true, patches);
                }
                phases.teardown_us += out.repair_us;
                out.repair_us = 0.0;
                obs.phase("fallback", t0, phases.total_us());
            }

            obs.batch_chunk(chunk_start / chunk_cap, chunk, chunk_t0, phases.total_us());
            chunk_start += chunk;
        }

        let faults_seen = (self.device.fault_log().len() - faults_before) as u32;
        let timing = Timing {
            phases,
            transfer_us,
            transfer_sweep_us,
            wall_us: wall0.elapsed().as_secs_f64() * 1e6,
        };
        let total_us = timing.total_us();
        let scenarios_per_sec = if total_us > 0.0 { nb as f64 / (total_us * 1e-6) } else { 0.0 };
        obs.batch_summary(nb, scenarios_per_sec);

        let fault_report = (armed || faults_seen > 0 || retries_total > 0 || corruptions_total > 0)
            .then(|| FaultReport {
                faults_injected: faults_seen,
                rollbacks: 0,
                retries: retries_total,
                checkpoints: 0,
                checkpoint_us: 0.0,
                backends: if degraded {
                    vec!["tensor-gpu".to_string(), "cpu-serial".to_string()]
                } else {
                    vec!["tensor-gpu".to_string()]
                },
                corruptions_detected: corruptions_total,
            });

        let residual =
            out.residuals.iter().fold(0.0f64, |acc, &r| MaxAbsF64::combine(acc, r));
        Ok(TensorBatchResult {
            iterations: out.per_scenario_iterations.iter().copied().max().unwrap_or(0),
            v: out.v,
            j: out.j,
            per_scenario_iterations: out.per_scenario_iterations,
            statuses: out.statuses,
            residuals: out.residuals,
            residual,
            min_v: if patches.is_some() { out.min_v } else { Vec::new() },
            timing,
            scenarios_per_sec,
            fault_report,
        })
    }

    /// Largest scenario batch one resident session can hold; callers
    /// running bigger families chunk on this.
    pub fn chunk_capacity(&self) -> usize {
        self.chunk_cap
    }

    /// Opens a resident-state outer-loop session over one scenario
    /// batch: topology, loads and the voltage iterate stay on the
    /// device across rounds. Each [`TensorOuterSession::solve_round`]
    /// re-iterates every live scenario from its previous fixed point;
    /// between rounds the driver adjusts a handful of bus loads
    /// ([`TensorOuterSession::update_loads`]) and reads back only the
    /// `probes` buses' voltages — so a compensation/PV outer loop pays
    /// sparse traffic per round instead of re-shipping `B·n` slabs.
    ///
    /// Device weather degrades the session to per-scenario serial
    /// solves (the voltage iterate is rebuilt cold after a fault — the
    /// fixed point does not depend on the starting profile, so only
    /// modeled time is lost, never correctness).
    ///
    /// `warm` optionally seeds every scenario's first round from one
    /// shared profile (by bus id) — typically the base-case fixed point
    /// — replicated device-side from a single `n`-word upload.
    pub fn outer_session<'s>(
        &'s mut self,
        a: &'s SolverArrays,
        loads: &[Vec<Complex>],
        probes: &[usize],
        warm: Option<&[Complex]>,
        cfg: &SolverConfig,
    ) -> TensorOuterSession<'s> {
        let n = a.len();
        let nb = loads.len();
        assert!(nb >= 1, "session needs at least one scenario");
        assert!(
            nb <= self.chunk_cap,
            "session of {nb} scenarios exceeds the chunk capacity {}",
            self.chunk_cap
        );
        for (s, sc) in loads.iter().enumerate() {
            assert_eq!(sc.len(), n, "scenario {s} has {} loads for {n} buses", sc.len());
        }
        for &b in probes {
            assert!(b < n, "probe bus {b} of {n}");
        }
        if let Some(w) = warm {
            assert_eq!(w.len(), n, "warm profile has {} entries for {n} buses", w.len());
        }
        let mut session = TensorOuterSession {
            solver: self,
            a,
            n,
            nb,
            probe_pos: probes.iter().map(|&b| a.levels.pos_of[b]).collect(),
            loads: loads.to_vec(),
            warm: warm.map(<[Complex]>::to_vec),
            retired: vec![false; nb],
            statuses: vec![SolveStatus::MaxIterations; nb],
            host_v: vec![None; nb],
            dev_state: None,
            degraded: false,
            max_recoveries: cfg.max_recoveries,
            retries: 0,
            total_us: 0.0,
        };
        session.try_build();
        session
    }
}

/// Accumulates per-scenario outputs across chunks.
struct Outcome {
    v: Vec<Vec<Complex>>,
    j: Vec<Vec<Complex>>,
    per_scenario_iterations: Vec<u32>,
    statuses: Vec<SolveStatus>,
    residuals: Vec<f64>,
    min_v: Vec<f64>,
    keep_state: bool,
    repairs: u32,
    repair_us: f64,
}

impl Outcome {
    fn new(nb: usize, keep_state: bool) -> Self {
        Outcome {
            v: if keep_state { vec![Vec::new(); nb] } else { Vec::new() },
            j: if keep_state { vec![Vec::new(); nb] } else { Vec::new() },
            per_scenario_iterations: vec![0; nb],
            statuses: vec![SolveStatus::MaxIterations; nb],
            residuals: vec![f64::INFINITY; nb],
            min_v: vec![f64::INFINITY; nb],
            keep_state,
            repairs: 0,
            repair_us: 0.0,
        }
    }

    /// Replaces scenario `s` with a serial solve outcome. `recovered`
    /// upgrades a converged serial status to [`SolveStatus::Recovered`]
    /// (the payload is patched by the caller at the end via
    /// `fault_report`; counts here are per-scenario bookkeeping). In
    /// patched mode the de-energized buses are zeroed and the energized
    /// `min |V|` is computed host-side, matching the device convention.
    fn absorb_serial(
        &mut self,
        s: usize,
        mut res: crate::report::SolveResult,
        recovered: bool,
        patches: Option<&PatchPlan>,
    ) {
        if let Some(plan) = patches {
            self.min_v[s] = host_min_v(&res.v, plan.root, &plan.isolated[s]);
            for &bus in &plan.isolated[s] {
                res.v[bus as usize] = Complex::ZERO;
                res.j[bus as usize] = Complex::ZERO;
            }
        }
        self.per_scenario_iterations[s] = res.iterations;
        self.residuals[s] = res.residual;
        self.statuses[s] = if recovered && res.status == SolveStatus::Converged {
            SolveStatus::Recovered { faults: 1, retries: 1 }
        } else {
            res.status
        };
        if self.keep_state {
            self.v[s] = res.v;
            self.j[s] = res.j;
        }
        self.repairs += 1;
        self.repair_us += res.timing.total_us();
    }
}

/// Host-side view of a patched batch: the shared position→DFS map plus
/// one cut range / impedance override / load scale per scenario.
/// `u32::MAX` is the universal "no patch" sentinel — an empty cut range
/// and an impossible override position — so unpatched scenarios flow
/// through the same kernel code without branching.
struct PatchPlan {
    /// Level position → DFS preorder position (length `n`). A node is
    /// de-energized in scenario `s` iff its DFS position falls in
    /// `[cut_lo[s], cut_hi[s])` — the subtree of the outaged bus is one
    /// contiguous DFS range, so membership is two compares.
    dfs_pos: Vec<u32>,
    /// Per-scenario load scales (the `Loads::Scaled` operand).
    scales: Vec<f64>,
    /// Level position of the outaged bus (the energized parent drops
    /// child `cut_pos` from its sum), or `u32::MAX`.
    cut_pos: Vec<u32>,
    cut_lo: Vec<u32>,
    cut_hi: Vec<u32>,
    /// Level position whose feeding impedance is overridden, or
    /// `u32::MAX`.
    z_pos: Vec<u32>,
    z_val: Vec<Complex>,
    /// De-energized bus ids per scenario (empty without an outage).
    isolated: Vec<Vec<u32>>,
    /// Warm-start profile, by bus id (replicated device-side).
    warm: Option<Vec<Complex>>,
    /// Root bus id (excluded from `min_v`).
    root: usize,
}

impl PatchPlan {
    fn build(
        a: &SolverArrays,
        dfs: &DfsOrder,
        patches: &[ScenarioPatch],
        warm: Option<&[Complex]>,
    ) -> Self {
        let n = a.len();
        assert_eq!(dfs.len(), n, "DFS order is over a {}-bus tree, arrays over {n}", dfs.len());
        let root = a.levels.order[0] as usize;
        let nb = patches.len();
        let dfs_pos: Vec<u32> =
            (0..n).map(|p| dfs.pos_of[a.levels.order[p] as usize]).collect();
        let mut plan = PatchPlan {
            dfs_pos,
            scales: Vec::with_capacity(nb),
            cut_pos: Vec::with_capacity(nb),
            cut_lo: Vec::with_capacity(nb),
            cut_hi: Vec::with_capacity(nb),
            z_pos: Vec::with_capacity(nb),
            z_val: Vec::with_capacity(nb),
            isolated: Vec::with_capacity(nb),
            warm: warm.map(|w| {
                assert_eq!(w.len(), n, "warm profile needs one voltage per bus");
                w.to_vec()
            }),
            root,
        };
        for (s, patch) in patches.iter().enumerate() {
            assert!(
                patch.scale.is_finite(),
                "scenario {s}: load scale must be finite, got {}",
                patch.scale
            );
            plan.scales.push(patch.scale);
            match patch.outage {
                Some(bus) => {
                    assert!(bus < n, "scenario {s}: outage bus {bus} of {n}");
                    assert_ne!(bus, root, "scenario {s}: the root has no feeding branch");
                    let d = dfs.pos_of[bus];
                    let sz = dfs.subtree_size[d as usize];
                    plan.cut_pos.push(a.levels.pos_of[bus]);
                    plan.cut_lo.push(d);
                    plan.cut_hi.push(d + sz);
                    plan.isolated.push(dfs.order[d as usize..(d + sz) as usize].to_vec());
                }
                None => {
                    plan.cut_pos.push(u32::MAX);
                    plan.cut_lo.push(u32::MAX);
                    plan.cut_hi.push(u32::MAX);
                    plan.isolated.push(Vec::new());
                }
            }
            match patch.z_override {
                Some((bus, z)) => {
                    assert!(bus < n, "scenario {s}: override bus {bus} of {n}");
                    assert_ne!(bus, root, "scenario {s}: the root has no feeding branch");
                    assert!(
                        z.is_finite() && z.abs() > 0.0 && z.re >= 0.0,
                        "scenario {s}: override impedance {z:?} is not a valid impedance"
                    );
                    plan.z_pos.push(a.levels.pos_of[bus]);
                    plan.z_val.push(z);
                }
                None => {
                    plan.z_pos.push(u32::MAX);
                    plan.z_val.push(Complex::ZERO);
                }
            }
        }
        plan
    }
}

/// Minimum energized non-root `|V|` of a by-bus profile (the host-side
/// mirror of the sweep kernel's min fold, for repaired scenarios).
fn host_min_v(v: &[Complex], root: usize, isolated: &[u32]) -> f64 {
    let mut dead = vec![false; v.len()];
    for &b in isolated {
        dead[b as usize] = true;
    }
    let mut min = f64::INFINITY;
    for (b, vv) in v.iter().enumerate() {
        if b != root && !dead[b] {
            min = min.min(vv.abs());
        }
    }
    min
}

/// Resident topology buffers (position space, size `n`).
struct Topology {
    z: DeviceBuffer<Complex>,
    parent_pos: DeviceBuffer<u32>,
    child_lo: DeviceBuffer<u32>,
    child_hi: DeviceBuffer<u32>,
    /// Base loads in position space (the scaled-mode operand).
    base_s: DeviceBuffer<Complex>,
    /// Patched solves: level position → DFS position (cut membership).
    dfs_pos: Option<DeviceBuffer<u32>>,
}

impl Topology {
    fn upload(
        dev: &mut Device,
        a: &SolverArrays,
        patches: Option<&PatchPlan>,
    ) -> Result<Self, DeviceError> {
        Ok(Topology {
            z: dev.try_alloc_from(&a.z)?,
            parent_pos: dev.try_alloc_from(&a.parent_pos)?,
            child_lo: dev.try_alloc_from(&a.child_lo)?,
            child_hi: dev.try_alloc_from(&a.child_hi)?,
            base_s: dev.try_alloc_from(&a.s)?,
            dfs_pos: match patches {
                Some(plan) => Some(dev.try_alloc_from(&plan.dfs_pos)?),
                None => None,
            },
        })
    }

    /// Reads every static buffer back and compares against the host
    /// truth (the audit's first line of defence).
    fn verify(
        &self,
        dev: &mut Device,
        a: &SolverArrays,
        patches: Option<&PatchPlan>,
    ) -> Result<bool, DeviceError> {
        Ok(dev.try_dtoh(&self.z)? == a.z
            && dev.try_dtoh(&self.parent_pos)? == a.parent_pos
            && dev.try_dtoh(&self.child_lo)? == a.child_lo
            && dev.try_dtoh(&self.child_hi)? == a.child_hi
            && dev.try_dtoh(&self.base_s)? == a.s
            && match (&self.dfs_pos, patches) {
                (Some(buf), Some(plan)) => dev.try_dtoh(buf)? == plan.dfs_pos,
                _ => true,
            })
    }
}

/// Position-space loads of one scenario (the serial repair operand).
fn repair_arrays(
    a: &SolverArrays,
    loads: &Loads<'_>,
    patches: Option<&PatchPlan>,
    s: usize,
) -> SolverArrays {
    let mut a2 = a.clone();
    match loads {
        Loads::Explicit(sc) => {
            for (p, slot) in a2.s.iter_mut().enumerate() {
                *slot = sc[s][a.levels.order[p] as usize];
            }
        }
        Loads::Scaled(scales) => {
            for slot in a2.s.iter_mut() {
                *slot = *slot * scales[s];
            }
        }
    }
    if let Some(plan) = patches {
        // An outage leaves the branch as an open switch: the subtree's
        // loads go to zero (so its currents vanish) and its buses are
        // masked on the way out; the serial sweep needs no other change.
        for &bus in &plan.isolated[s] {
            a2.s[a.levels.pos_of[bus as usize] as usize] = Complex::ZERO;
        }
        if plan.z_pos[s] != u32::MAX {
            a2.z[plan.z_pos[s] as usize] = plan.z_val[s];
        }
    }
    a2
}

/// Serial solve of one (possibly patched, possibly warm-started)
/// scenario — the host oracle for repairs and the degraded path.
fn repair_solve(
    serial: &SerialSolver,
    a: &SolverArrays,
    loads: &Loads<'_>,
    patches: Option<&PatchPlan>,
    warm: Option<&[Vec<Complex>]>,
    s: usize,
    cfg: &SolverConfig,
) -> crate::report::SolveResult {
    let arrays = repair_arrays(a, loads, patches, s);
    let shared = patches.and_then(|plan| plan.warm.as_deref());
    let warm = warm.map(|w| w[s].as_slice()).or(shared);
    serial.solve_warm(&arrays, cfg, warm)
}

/// Scenario-load device views for the fused kernels.
enum LoadsRef<'a> {
    Explicit(GlobalRef<'a, Complex>),
    Scaled { base: GlobalRef<'a, Complex>, scales: GlobalRef<'a, f64> },
}

/// Runs one chunk of scenarios to completion on the device, including the
/// armed-plan audit, writing results into `out`.
#[allow(clippy::too_many_arguments)]
fn run_chunk(
    dev: &mut Device,
    a: &SolverArrays,
    topo: &Topology,
    loads: &Loads<'_>,
    patches: Option<&PatchPlan>,
    warm: Option<&[Vec<Complex>]>,
    range: std::ops::Range<usize>,
    cfg: &SolverConfig,
    armed: bool,
    obs: &Obs,
    phases: &mut PhaseTimes,
    transfer_us: &mut f64,
    transfer_sweep_us: &mut f64,
    out: &mut Outcome,
) -> Result<(), DeviceError> {
    let n = a.len();
    let nb = range.len();
    let v0 = a.source;
    let level_offsets: Vec<u32> = a.levels.level_offsets.clone();

    // ---- Per-chunk state (setup).
    let mark = dev.timeline().mark();
    let mut s_slab: Option<DeviceBuffer<Complex>> = None;
    let mut scale_buf: Option<DeviceBuffer<f64>> = None;
    let mut s_host: Vec<Complex> = Vec::new();
    match loads {
        Loads::Explicit(scenarios) => {
            s_host = vec![Complex::ZERO; nb * n];
            for ls in 0..nb {
                let sc = &scenarios[range.start + ls];
                for p in 0..n {
                    s_host[ls * n + p] = sc[a.levels.order[p] as usize];
                }
            }
            s_slab = Some(dev.try_alloc_from(&s_host)?);
        }
        Loads::Scaled(scales) => {
            scale_buf = Some(dev.try_alloc_from(&scales[range.clone()])?);
        }
    }
    // Patched chunks: a few words per scenario describe the cut range
    // and the impedance override, plus one `min |V|` slot per scenario.
    let chunk_patch = match patches {
        Some(plan) => Some(ChunkPatch {
            cut_pos: dev.try_alloc_from(&plan.cut_pos[range.clone()])?,
            cut_lo: dev.try_alloc_from(&plan.cut_lo[range.clone()])?,
            cut_hi: dev.try_alloc_from(&plan.cut_hi[range.clone()])?,
            z_pos: dev.try_alloc_from(&plan.z_pos[range.clone()])?,
            z_val: dev.try_alloc_from(&plan.z_val[range.clone()])?,
        }),
        None => None,
    };
    let mut minv_buf = match patches {
        Some(_) => {
            let mut buf = dev.try_alloc::<f64>(nb)?;
            try_fill(dev, &mut buf, f64::INFINITY)?;
            Some(buf)
        }
        None => None,
    };
    let mut v_buf = match warm {
        Some(profiles) => {
            // Per-scenario warm start: the chunk's profiles are already
            // the exact initial state, so upload them straight into the
            // striped iterate — no replication kernel needed.
            let mut flat = Vec::with_capacity(nb * n);
            for s in range.clone() {
                flat.extend_from_slice(&a.levels.permute(&profiles[s]));
            }
            dev.try_alloc_from(&flat)?
        }
        None => {
            let mut v_buf = dev.try_alloc::<Complex>(nb * n)?;
            match patches.and_then(|plan| plan.warm.as_ref()) {
                Some(shared) => {
                    // Shared warm start: replicate the permuted base-case
                    // profile into every scenario stripe device-side (one
                    // `n`-word upload).
                    let warm_buf = dev.try_alloc_from(&a.levels.permute(shared))?;
                    let kernel =
                        WarmInitKernel { warm: warm_buf.view(), v: v_buf.view_mut(), n };
                    dev.try_launch(LaunchConfig::grid2d(1, nb as u32, TENSOR_BLOCK), &kernel)?;
                }
                None => try_fill(dev, &mut v_buf, v0)?,
            }
            v_buf
        }
    };
    let mut j_buf = dev.try_alloc::<Complex>(nb * n)?;
    let mut mask_buf = dev.try_alloc_from(&vec![1u32; nb])?;
    let mut res_buf = dev.try_alloc::<f64>(nb)?;
    try_fill(dev, &mut res_buf, 0.0)?;
    let b = dev.timeline().breakdown_since(mark);
    phases.setup_us += b.total_us();
    *transfer_us += b.htod_us + b.dtoh_us;

    // ---- Per-scenario monitors and masks.
    let mut monitors: Vec<ConvergenceMonitor> =
        (0..nb).map(|_| ConvergenceMonitor::new(cfg, v0.abs())).collect();
    let tol = monitors[0].tol();
    let mut mask_host = vec![1u32; nb];
    let mut active = nb;
    let mut frozen_status: Vec<Option<SolveStatus>> = vec![None; nb];
    let mut last_residual = vec![f64::INFINITY; nb];
    let mut iters_done = vec![0u32; nb];
    // The sweep packs SCENARIOS_PER_BLOCK scenarios per block to amortise
    // topology reads; the audit maps one block per scenario.
    let grid_sweep =
        LaunchConfig::grid2d(1, nb.div_ceil(SCENARIOS_PER_BLOCK) as u32, TENSOR_BLOCK);
    let grid_audit = LaunchConfig::grid2d(1, nb as u32, TENSOR_BLOCK);

    let mut iteration = 0u32;
    while active > 0 && iteration < cfg.max_iter {
        iteration += 1;
        let iter_t0 = phases.total_us();

        // One fused sweep launch per iteration: backward, forward, and
        // the in-block residual fold. The launch cannot be split into
        // per-half timings, so its whole modeled time is charged to
        // `backward_us` (`forward_us` stays 0 in the tensor engine, like
        // `injection_us` — both are fused into the same kernel).
        let mark = dev.timeline().mark();
        {
            let kernel = SweepKernel {
                loads: loads_ref(&s_slab, &scale_buf, topo),
                v: v_buf.view_mut(),
                j: j_buf.view_mut(),
                z: topo.z.view(),
                parent_pos: topo.parent_pos.view(),
                child_lo: topo.child_lo.view(),
                child_hi: topo.child_hi.view(),
                mask: mask_buf.view(),
                residuals: res_buf.view_mut(),
                patch: patch_ref(topo, &chunk_patch),
                min_v: minv_buf.as_mut().map(|b| b.view_mut()),
                level_offsets: &level_offsets,
                n,
                nb,
            };
            dev.try_launch(grid_sweep, &kernel)?;
        }
        phases.backward_us += dev.timeline().breakdown_since(mark).total_us();
        obs.phase("sweep", iter_t0, phases.total_us());

        // Per-scenario convergence triage on the host.
        let conv_t0 = phases.total_us();
        let mark = dev.timeline().mark();
        let residuals = dev.try_dtoh_checked(&res_buf)?;
        let mut any_froze = false;
        let mut worst_active = 0.0f64;
        for ls in 0..nb {
            if mask_host[ls] == 0 {
                continue;
            }
            let r = residuals[ls];
            last_residual[ls] = r;
            iters_done[ls] = iteration;
            worst_active = MaxAbsF64::combine(worst_active, r);
            if let Some(status) = monitors[ls].observe(iteration, r) {
                frozen_status[ls] = Some(status);
                mask_host[ls] = 0;
                active -= 1;
                any_froze = true;
            }
        }
        if any_froze && active > 0 {
            dev.try_htod_checked(&mut mask_buf, &mask_host)?;
        }
        let b = dev.timeline().breakdown_since(mark);
        phases.convergence_us += b.total_us();
        *transfer_us += b.htod_us + b.dtoh_us;
        *transfer_sweep_us += b.htod_us + b.dtoh_us;
        obs.phase("convergence", conv_t0, phases.total_us());
        obs.iteration(iteration, iter_t0, phases.total_us(), worst_active);

        // Modeled deadline covers the scenarios still running.
        if let Some(budget) = cfg.deadline_us {
            let elapsed = phases.total_us();
            if elapsed >= budget && active > 0 {
                for ls in 0..nb {
                    if mask_host[ls] == 1 {
                        mask_host[ls] = 0;
                        frozen_status[ls] = Some(SolveStatus::DeadlineExceeded {
                            at_iteration: iteration,
                            elapsed_us: elapsed as u64,
                        });
                    }
                }
                active = 0;
            }
        }
    }

    // ---- Audit (armed plans only): static readback compare + one
    // no-commit iteration, per-scenario ∞-norm via the batched reduce.
    let mut suspicious = vec![false; nb];
    if armed {
        let audit_t0 = phases.total_us();
        let mark = dev.timeline().mark();
        let statics_ok = topo.verify(dev, a, patches)?
            && match (&s_slab, &scale_buf, loads) {
                (Some(buf), _, _) => dev.try_dtoh(buf)? == s_host,
                (_, Some(buf), Loads::Scaled(scales)) => {
                    dev.try_dtoh(buf)? == scales[range.clone()]
                }
                _ => true,
            }
            && match (&chunk_patch, patches) {
                (Some(cp), Some(plan)) => {
                    dev.try_dtoh(&cp.cut_pos)? == plan.cut_pos[range.clone()]
                        && dev.try_dtoh(&cp.cut_lo)? == plan.cut_lo[range.clone()]
                        && dev.try_dtoh(&cp.cut_hi)? == plan.cut_hi[range.clone()]
                        && dev.try_dtoh(&cp.z_pos)? == plan.z_pos[range.clone()]
                        && dev.try_dtoh(&cp.z_val)? == plan.z_val[range.clone()]
                }
                _ => true,
            };
        if !statics_ok {
            suspicious.iter_mut().for_each(|f| *f = true);
        } else {
            let mut j_audit = dev.try_alloc::<Complex>(nb * n)?;
            let mut v_audit = dev.try_alloc::<Complex>(nb * n)?;
            let mut delta = dev.try_alloc::<f64>(nb * n)?;
            {
                let kernel = AuditKernel {
                    loads: loads_ref(&s_slab, &scale_buf, topo),
                    v: v_buf.view(),
                    j: j_buf.view(),
                    j_audit: j_audit.view_mut(),
                    v_audit: v_audit.view_mut(),
                    delta: delta.view_mut(),
                    z: topo.z.view(),
                    parent_pos: topo.parent_pos.view(),
                    child_lo: topo.child_lo.view(),
                    child_hi: topo.child_hi.view(),
                    patch: patch_ref(topo, &chunk_patch),
                    level_offsets: &level_offsets,
                    n,
                };
                dev.try_launch(grid_audit, &kernel)?;
            }
            let audit_res = try_reduce_batched::<f64, MaxAbsF64>(dev, &delta, nb)?;
            for ls in 0..nb {
                let status = frozen_status[ls].unwrap_or(SolveStatus::MaxIterations);
                let clean = status.is_converged() && audit_res[ls] <= tol;
                // A converged scenario failing its audit, or any flagged
                // failure under an armed plan, goes to the host oracle.
                suspicious[ls] = !clean;
            }
        }
        let b = dev.timeline().breakdown_since(mark);
        phases.convergence_us += b.total_us();
        *transfer_us += b.htod_us + b.dtoh_us;
        obs.phase("audit", audit_t0, phases.total_us());
    }

    // ---- Teardown: state download and unbatching.
    let keep = out.keep_state;
    let (v_host, j_host) = if keep {
        let mark = dev.timeline().mark();
        let v = dev.try_dtoh_checked(&v_buf)?;
        let j = dev.try_dtoh_checked(&j_buf)?;
        let b = dev.timeline().breakdown_since(mark);
        phases.teardown_us += b.total_us();
        *transfer_us += b.htod_us + b.dtoh_us;
        (v, j)
    } else {
        (Vec::new(), Vec::new())
    };

    let minv_host = match &minv_buf {
        Some(buf) => {
            let mark = dev.timeline().mark();
            let m = dev.try_dtoh_checked(buf)?;
            let b = dev.timeline().breakdown_since(mark);
            phases.teardown_us += b.total_us();
            *transfer_us += b.htod_us + b.dtoh_us;
            m
        }
        None => Vec::new(),
    };

    let serial = SerialSolver::new(HostProps::paper_rig());
    for ls in 0..nb {
        let s = range.start + ls;
        if armed && suspicious[ls] {
            let res = repair_solve(&serial, a, loads, patches, warm, s, cfg);
            out.absorb_serial(s, res, true, patches);
            continue;
        }
        out.per_scenario_iterations[s] = iters_done[ls];
        out.statuses[s] = frozen_status[ls].unwrap_or(SolveStatus::MaxIterations);
        out.residuals[s] = last_residual[ls];
        if let Some(plan) = patches {
            out.min_v[s] = minv_host[ls];
            if keep {
                let mut v = unpermute(a, &v_host[ls * n..(ls + 1) * n]);
                let mut j = unpermute(a, &j_host[ls * n..(ls + 1) * n]);
                // De-energized buses report dead, not their stale
                // initial values.
                for &bus in &plan.isolated[s] {
                    v[bus as usize] = Complex::ZERO;
                    j[bus as usize] = Complex::ZERO;
                }
                out.v[s] = v;
                out.j[s] = j;
            }
        } else if keep {
            out.v[s] = unpermute(a, &v_host[ls * n..(ls + 1) * n]);
            out.j[s] = unpermute(a, &j_host[ls * n..(ls + 1) * n]);
        }
    }
    phases.teardown_us += out.repair_us;
    out.repair_us = 0.0;
    Ok(())
}

fn loads_ref<'a>(
    s_slab: &'a Option<DeviceBuffer<Complex>>,
    scale_buf: &'a Option<DeviceBuffer<f64>>,
    topo: &'a Topology,
) -> LoadsRef<'a> {
    match (s_slab, scale_buf) {
        (Some(s), _) => LoadsRef::Explicit(s.view()),
        (_, Some(sc)) => LoadsRef::Scaled { base: topo.base_s.view(), scales: sc.view() },
        _ => unreachable!("one load source is always present"),
    }
}

/// Per-chunk patch buffers (one word each per scenario, local index).
struct ChunkPatch {
    cut_pos: DeviceBuffer<u32>,
    cut_lo: DeviceBuffer<u32>,
    cut_hi: DeviceBuffer<u32>,
    z_pos: DeviceBuffer<u32>,
    z_val: DeviceBuffer<Complex>,
}

/// Device views of the patch state for the fused kernels.
struct PatchRefs<'a> {
    dfs_pos: GlobalRef<'a, u32>,
    cut_pos: GlobalRef<'a, u32>,
    cut_lo: GlobalRef<'a, u32>,
    cut_hi: GlobalRef<'a, u32>,
    z_pos: GlobalRef<'a, u32>,
    z_val: GlobalRef<'a, Complex>,
}

fn patch_ref<'a>(topo: &'a Topology, chunk: &'a Option<ChunkPatch>) -> Option<PatchRefs<'a>> {
    chunk.as_ref().map(|cp| PatchRefs {
        dfs_pos: topo.dfs_pos.as_ref().expect("patched topology has dfs_pos").view(),
        cut_pos: cp.cut_pos.view(),
        cut_lo: cp.cut_lo.view(),
        cut_hi: cp.cut_hi.view(),
        z_pos: cp.z_pos.view(),
        z_val: cp.z_val.view(),
    })
}

/// Per-scenario outcome of one [`TensorOuterSession::solve_round`].
pub struct OuterRound {
    /// Inner solve status per scenario (retired scenarios keep the
    /// status of their last live round).
    pub statuses: Vec<SolveStatus>,
    /// Inner iterations this round (0 for retired scenarios).
    pub iterations: Vec<u32>,
    /// Probe-bus voltages per scenario, in the order the probes were
    /// registered. Retired scenarios report their final state.
    pub probe_v: Vec<Vec<Complex>>,
}

/// Final report of a [`TensorOuterSession`].
pub struct SessionReport {
    /// Final voltages by bus id, per scenario.
    pub v: Vec<Vec<Complex>>,
    /// Total modeled time across every round, µs.
    pub total_us: f64,
    /// Transient-fault retries absorbed.
    pub retries: u32,
    /// Whether the session finished on the serial fallback.
    pub degraded: bool,
}

/// Device half of a resident outer-loop session (see
/// [`TensorBatchSolver::outer_session`]).
struct SessionBuffers {
    topo: Topology,
    /// Per-scenario loads, position space, `nb·n`.
    s_slab: DeviceBuffer<Complex>,
    /// Voltage iterate, kept across rounds (`nb·n`).
    v: DeviceBuffer<Complex>,
    j: DeviceBuffer<Complex>,
    res: DeviceBuffer<f64>,
    mask: DeviceBuffer<u32>,
    /// Probe positions (level space) and the gathered output slab.
    probe_pos: DeviceBuffer<u32>,
    probe_out: DeviceBuffer<Complex>,
}

/// Resident-state outer-loop session: one scenario batch held on the
/// device across outer rounds, with sparse load updates and probe-bus
/// readback between rounds.
pub struct TensorOuterSession<'s> {
    solver: &'s mut TensorBatchSolver,
    a: &'s SolverArrays,
    n: usize,
    nb: usize,
    /// Probe level positions (host copy; re-uploaded on rebuild).
    probe_pos: Vec<u32>,
    /// Host mirror of every scenario's loads, by bus id — the rebuild
    /// and fallback source of truth.
    loads: Vec<Vec<Complex>>,
    /// Optional shared warm-start profile, by bus id. Seeds the first
    /// round (and every post-fault rebuild) in place of a flat start.
    warm: Option<Vec<Complex>>,
    /// Scenarios excluded from further rounds (outer loop settled).
    retired: Vec<bool>,
    /// Last inner status per scenario.
    statuses: Vec<SolveStatus>,
    /// Host-resident voltages, populated on the fallback path.
    host_v: Vec<Option<Vec<Complex>>>,
    dev_state: Option<SessionBuffers>,
    degraded: bool,
    max_recoveries: u32,
    retries: u32,
    total_us: f64,
}

impl TensorOuterSession<'_> {
    /// (Re)builds the device state from the host mirrors. The voltage
    /// iterate restarts cold — the next round pays extra iterations,
    /// nothing else. Leaves `dev_state` as `None` on failure.
    fn try_build(&mut self) {
        self.dev_state = None;
        if self.degraded || self.solver.device.is_lost() {
            return;
        }
        // The scenario loads are usually a sparse perturbation of the
        // base case (DG corrections at a handful of buses), so the slab
        // ships as one `n`-word base vector replicated device-side plus
        // a scatter of the per-scenario deviations — not `B·n` words.
        let base_by_bus = unpermute(self.a, &self.a.s);
        let mut dev_s = Vec::new();
        let mut dev_pos = Vec::new();
        let mut dev_vals = Vec::new();
        for (s, sc) in self.loads.iter().enumerate() {
            for (bus, (&have, &want)) in base_by_bus.iter().zip(sc).enumerate() {
                if have != want {
                    dev_s.push(s as u32);
                    dev_pos.push(self.a.levels.pos_of[bus]);
                    dev_vals.push(want);
                }
            }
        }
        let dev = &mut self.solver.device;
        let mark = dev.timeline().mark();
        let built = catch_unwind(AssertUnwindSafe(|| -> Result<SessionBuffers, DeviceError> {
            let topo = Topology::upload(dev, self.a, None)?;
            let base_buf = dev.try_alloc_from(&self.a.s)?;
            let mut s_slab = dev.try_alloc::<Complex>(self.nb * self.n)?;
            {
                let kernel = WarmInitKernel {
                    warm: base_buf.view(),
                    v: s_slab.view_mut(),
                    n: self.n,
                };
                dev.try_launch(LaunchConfig::grid2d(1, self.nb as u32, TENSOR_BLOCK), &kernel)?;
            }
            if !dev_s.is_empty() {
                let s_buf = dev.try_alloc_from(&dev_s)?;
                let p_buf = dev.try_alloc_from(&dev_pos)?;
                let v_buf = dev.try_alloc_from(&dev_vals)?;
                let kernel = ScatterKernel {
                    s_idx: s_buf.view(),
                    pos: p_buf.view(),
                    vals: v_buf.view(),
                    dst: s_slab.view_mut(),
                    k: dev_s.len(),
                    n: self.n,
                };
                dev.try_launch(LaunchConfig::grid2d(1, 1, TENSOR_BLOCK), &kernel)?;
            }
            let mut v = dev.try_alloc::<Complex>(self.nb * self.n)?;
            match &self.warm {
                Some(profile) => {
                    // One `n`-word upload, replicated device-side into
                    // every scenario stripe.
                    let warm_buf = dev.try_alloc_from(&self.a.levels.permute(profile))?;
                    let kernel = WarmInitKernel {
                        warm: warm_buf.view(),
                        v: v.view_mut(),
                        n: self.n,
                    };
                    dev.try_launch(
                        LaunchConfig::grid2d(1, self.nb as u32, TENSOR_BLOCK),
                        &kernel,
                    )?;
                }
                None => try_fill(dev, &mut v, self.a.source)?,
            }
            let j = dev.try_alloc::<Complex>(self.nb * self.n)?;
            let mut res = dev.try_alloc::<f64>(self.nb)?;
            try_fill(dev, &mut res, 0.0)?;
            let mask = dev.try_alloc_from(&vec![1u32; self.nb])?;
            let probe_pos = dev.try_alloc_from(&self.probe_pos)?;
            let probe_out =
                dev.try_alloc::<Complex>(self.nb * self.probe_pos.len().max(1))?;
            Ok(SessionBuffers { topo, s_slab, v, j, res, mask, probe_pos, probe_out })
        }));
        self.total_us += dev.timeline().breakdown_since(mark).total_us();
        if let Ok(Ok(bufs)) = built {
            self.dev_state = Some(bufs);
        }
    }

    /// Applies sparse load updates `(scenario, bus, new load)`. The
    /// host mirror is always updated; the resident slab gets a scatter
    /// of just these entries.
    pub fn update_loads(&mut self, updates: &[(usize, usize, Complex)]) {
        for &(s, bus, val) in updates {
            assert!(s < self.nb, "scenario {s} of {}", self.nb);
            assert!(bus < self.n, "bus {bus} of {}", self.n);
            self.loads[s][bus] = val;
        }
        if updates.is_empty() || self.dev_state.is_none() {
            return;
        }
        let s_idx: Vec<u32> = updates.iter().map(|&(s, _, _)| s as u32).collect();
        let pos: Vec<u32> =
            updates.iter().map(|&(_, b, _)| self.a.levels.pos_of[b]).collect();
        let vals: Vec<Complex> = updates.iter().map(|&(_, _, v)| v).collect();
        let bufs = self.dev_state.as_mut().expect("checked above");
        let dev = &mut self.solver.device;
        let mark = dev.timeline().mark();
        let applied = catch_unwind(AssertUnwindSafe(|| -> Result<(), DeviceError> {
            let s_buf = dev.try_alloc_from(&s_idx)?;
            let p_buf = dev.try_alloc_from(&pos)?;
            let v_buf = dev.try_alloc_from(&vals)?;
            let kernel = ScatterKernel {
                s_idx: s_buf.view(),
                pos: p_buf.view(),
                vals: v_buf.view(),
                dst: bufs.s_slab.view_mut(),
                k: updates.len(),
                n: self.n,
            };
            dev.try_launch(LaunchConfig::grid2d(1, 1, TENSOR_BLOCK), &kernel)
        }));
        self.total_us += dev.timeline().breakdown_since(mark).total_us();
        if !matches!(applied, Ok(Ok(()))) {
            // The mirror is authoritative; a rebuild re-ships it whole.
            self.absorb_fault();
        }
    }

    /// Counts a device fault against the retry budget: rebuild while
    /// budget remains, degrade to the serial fallback after.
    fn absorb_fault(&mut self) {
        if self.retries < self.max_recoveries && !self.solver.device.is_lost() {
            self.retries += 1;
            self.try_build();
            if self.dev_state.is_some() {
                return;
            }
        }
        self.degraded = true;
        self.dev_state = None;
    }

    /// Excludes a scenario from further rounds; its resident state (and
    /// final voltages) stay exactly as its last live round left them.
    pub fn retire(&mut self, s: usize) {
        assert!(s < self.nb, "scenario {s} of {}", self.nb);
        self.retired[s] = true;
    }

    /// One batched inner solve over every live scenario, re-iterating
    /// from the resident voltages. Falls back to per-scenario serial
    /// solves (warm off the host mirror) when the device is out.
    pub fn solve_round(&mut self, cfg: &SolverConfig) -> OuterRound {
        loop {
            if self.degraded || self.dev_state.is_none() {
                return self.host_round(cfg);
            }
            let round = catch_unwind(AssertUnwindSafe(|| self.device_round_raw(cfg)));
            match round {
                Ok(Ok(r)) => return r,
                _ => self.absorb_fault(),
            }
        }
    }

    /// Device path of one round. Any `Err` or panic is a device fault
    /// handled by the caller.
    fn device_round_raw(&mut self, cfg: &SolverConfig) -> Result<OuterRound, DeviceError> {
        let (n, nb) = (self.n, self.nb);
        let np = self.probe_pos.len();
        let bufs = self.dev_state.as_mut().expect("device path has state");
        let dev = &mut self.solver.device;
        let mark = dev.timeline().mark();

        let mut mask_host: Vec<u32> =
            self.retired.iter().map(|&r| if r { 0 } else { 1 }).collect();
        let mut active = mask_host.iter().filter(|&&m| m == 1).count();
        dev.try_htod_checked(&mut bufs.mask, &mask_host)?;

        let mut monitors: Vec<ConvergenceMonitor> =
            (0..nb).map(|_| ConvergenceMonitor::new(cfg, self.a.source.abs())).collect();
        let mut iters_done = vec![0u32; nb];
        let mut frozen: Vec<Option<SolveStatus>> = vec![None; nb];
        let grid_sweep =
            LaunchConfig::grid2d(1, nb.div_ceil(SCENARIOS_PER_BLOCK) as u32, TENSOR_BLOCK);
        let level_offsets: Vec<u32> = self.a.levels.level_offsets.clone();

        let mut iteration = 0u32;
        while active > 0 && iteration < cfg.max_iter {
            iteration += 1;
            {
                let kernel = SweepKernel {
                    loads: LoadsRef::Explicit(bufs.s_slab.view()),
                    v: bufs.v.view_mut(),
                    j: bufs.j.view_mut(),
                    z: bufs.topo.z.view(),
                    parent_pos: bufs.topo.parent_pos.view(),
                    child_lo: bufs.topo.child_lo.view(),
                    child_hi: bufs.topo.child_hi.view(),
                    mask: bufs.mask.view(),
                    residuals: bufs.res.view_mut(),
                    patch: None,
                    min_v: None,
                    level_offsets: &level_offsets,
                    n,
                    nb,
                };
                dev.try_launch(grid_sweep, &kernel)?;
            }
            let residuals = dev.try_dtoh_checked(&bufs.res)?;
            let mut any_froze = false;
            for ls in 0..nb {
                if mask_host[ls] == 0 {
                    continue;
                }
                iters_done[ls] = iteration;
                if let Some(status) = monitors[ls].observe(iteration, residuals[ls]) {
                    frozen[ls] = Some(status);
                    mask_host[ls] = 0;
                    active -= 1;
                    any_froze = true;
                }
            }
            if any_froze && active > 0 {
                dev.try_htod_checked(&mut bufs.mask, &mask_host)?;
            }
        }

        // Probe readback: `nb·np` words instead of the full slabs.
        let mut probe_v = vec![Vec::new(); nb];
        if np > 0 {
            {
                let kernel = GatherKernel {
                    src: bufs.v.view(),
                    slots: bufs.probe_pos.view(),
                    out: bufs.probe_out.view_mut(),
                    np,
                    n,
                };
                dev.try_launch(LaunchConfig::grid2d(1, nb as u32, TENSOR_BLOCK), &kernel)?;
            }
            let gathered = dev.try_dtoh_checked(&bufs.probe_out)?;
            for (s, slot) in probe_v.iter_mut().enumerate() {
                *slot = gathered[s * np..s * np + np].to_vec();
            }
        }

        self.total_us += dev.timeline().breakdown_since(mark).total_us();
        let mut iterations = vec![0u32; nb];
        for s in 0..nb {
            if self.retired[s] {
                continue;
            }
            self.statuses[s] = frozen[s].unwrap_or(SolveStatus::MaxIterations);
            iterations[s] = iters_done[s];
        }
        Ok(OuterRound { statuses: self.statuses.clone(), iterations, probe_v })
    }

    /// Serial fallback round: each live scenario re-solves on the host,
    /// warm off its previous fallback profile when one exists.
    fn host_round(&mut self, cfg: &SolverConfig) -> OuterRound {
        let serial = SerialSolver::new(HostProps::paper_rig());
        let np = self.probe_pos.len();
        let mut iterations = vec![0u32; self.nb];
        let mut probe_v = vec![Vec::new(); self.nb];
        for s in 0..self.nb {
            if self.retired[s] {
                if let Some(v) = &self.host_v[s] {
                    probe_v[s] = self.probes_of(v, np);
                }
                continue;
            }
            let res = self.host_solve(&serial, s, cfg);
            iterations[s] = res.iterations;
            self.statuses[s] = res.status;
            probe_v[s] = self.probes_of(&res.v, np);
            self.total_us += res.timing.total_us();
            self.host_v[s] = Some(res.v);
        }
        OuterRound { statuses: self.statuses.clone(), iterations, probe_v }
    }

    /// One host solve of scenario `s` from the load mirror.
    fn host_solve(
        &self,
        serial: &SerialSolver,
        s: usize,
        cfg: &SolverConfig,
    ) -> crate::report::SolveResult {
        let mut a2 = self.a.clone();
        for (p, slot) in a2.s.iter_mut().enumerate() {
            *slot = self.loads[s][self.a.levels.order[p] as usize];
        }
        serial.solve_warm(&a2, cfg, self.host_v[s].as_deref().or(self.warm.as_deref()))
    }

    fn probes_of(&self, v: &[Complex], np: usize) -> Vec<Complex> {
        (0..np)
            .map(|k| v[self.a.levels.order[self.probe_pos[k] as usize] as usize])
            .collect()
    }

    /// Downloads every scenario's final voltages and closes the
    /// session.
    pub fn finish(mut self, cfg: &SolverConfig) -> SessionReport {
        let v = loop {
            if self.degraded || self.dev_state.is_none() {
                // Fallback: scenarios the serial path never touched
                // re-solve cold off the load mirror — same fixed point.
                let serial = SerialSolver::new(HostProps::paper_rig());
                let mut all = Vec::with_capacity(self.nb);
                for s in 0..self.nb {
                    match self.host_v[s].take() {
                        Some(v) => all.push(v),
                        None => {
                            let res = self.host_solve(&serial, s, cfg);
                            self.total_us += res.timing.total_us();
                            all.push(res.v);
                        }
                    }
                }
                break all;
            }
            let bufs = self.dev_state.as_ref().expect("device path has state");
            let dev = &mut self.solver.device;
            let mark = dev.timeline().mark();
            let slab = catch_unwind(AssertUnwindSafe(|| dev.try_dtoh_checked(&bufs.v)));
            self.total_us += dev.timeline().breakdown_since(mark).total_us();
            match slab {
                Ok(Ok(flat)) => {
                    break (0..self.nb)
                        .map(|s| unpermute(self.a, &flat[s * self.n..(s + 1) * self.n]))
                        .collect();
                }
                // A rebuild restarts the iterate cold, so the resident
                // voltages are gone: re-deriving them means re-solving,
                // which is exactly the fallback path.
                _ => {
                    self.degraded = true;
                    self.dev_state = None;
                }
            }
        };
        SessionReport {
            v,
            total_us: self.total_us,
            retries: self.retries,
            degraded: self.degraded,
        }
    }
}

/// Scatters sparse load updates into the resident slab:
/// `dst[s_idx[k]·n + pos[k]] = vals[k]`.
struct ScatterKernel<'a> {
    s_idx: GlobalRef<'a, u32>,
    pos: GlobalRef<'a, u32>,
    vals: GlobalRef<'a, Complex>,
    dst: GlobalMut<'a, Complex>,
    k: usize,
    n: usize,
}

impl Kernel for ScatterKernel<'_> {
    fn name(&self) -> &'static str {
        "tensor_scatter_loads"
    }

    fn block(&self, blk: &mut BlockScope) {
        let bdim = blk.block_dim();
        blk.threads(|t| {
            let mut i = t.tid();
            while i < self.k {
                let s = t.ld(&self.s_idx, i) as usize;
                let p = t.ld(&self.pos, i) as usize;
                let v = t.ld(&self.vals, i);
                t.st(&self.dst, s * self.n + p, v);
                i += bdim;
            }
        });
    }
}

/// Gathers probe positions out of a striped slab:
/// `out[s·np + k] = src[s·n + slots[k]]`. One block per scenario.
struct GatherKernel<'a> {
    src: GlobalRef<'a, Complex>,
    slots: GlobalRef<'a, u32>,
    out: GlobalMut<'a, Complex>,
    np: usize,
    n: usize,
}

impl Kernel for GatherKernel<'_> {
    fn name(&self) -> &'static str {
        "tensor_gather_probes"
    }

    fn block(&self, blk: &mut BlockScope) {
        let s = blk.block_idx_y();
        let bdim = blk.block_dim();
        blk.threads(|t| {
            let mut k = t.tid();
            while k < self.np {
                let p = t.ld(&self.slots, k) as usize;
                let v = t.ld(&self.src, s * self.n + p);
                t.st(&self.out, s * self.np + k, v);
                k += bdim;
            }
        });
    }
}

/// One scenario resident in a sweep block: its chunk-local index, load
/// scale, and patch words (`u32::MAX` sentinels when unpatched, which
/// never match a real position or DFS range).
#[derive(Clone, Copy)]
struct Member {
    s_idx: usize,
    scale: f64,
    cut_pos: u32,
    cut_lo: u32,
    cut_hi: u32,
    z_pos: u32,
    z_val: Complex,
}

/// Replicates the warm-start profile (position space, length `n`) into
/// every scenario stripe: `v[s·n + p] = warm[p]`. One block per
/// scenario, threads strided over positions.
struct WarmInitKernel<'a> {
    warm: GlobalRef<'a, Complex>,
    v: GlobalMut<'a, Complex>,
    n: usize,
}

impl Kernel for WarmInitKernel<'_> {
    fn name(&self) -> &'static str {
        "tensor_warm_init"
    }

    fn block(&self, blk: &mut BlockScope) {
        let base = blk.block_idx_y() * self.n;
        let bdim = blk.block_dim();
        blk.threads(|t| {
            let mut k = t.tid();
            while k < self.n {
                let w = t.ld(&self.warm, k);
                t.st(&self.v, base + k, w);
                k += bdim;
            }
        });
    }
}

fn unpermute(a: &SolverArrays, pos: &[Complex]) -> Vec<Complex> {
    let mut by_bus = vec![Complex::ZERO; pos.len()];
    for (p, &v) in pos.iter().enumerate() {
        by_bus[a.levels.order[p] as usize] = v;
    }
    by_bus
}

/// One fused FBS iteration per launch: the backward sweep (injection
/// inline, levels leaf→root) runs immediately into the forward ladder
/// sweep (levels root→leaf) as barrier phases of the *same* kernel, one
/// block per [`SCENARIOS_PER_BLOCK`] scenarios (`blockIdx.y`).
///
/// Fusing the two sweeps lets each thread keep the branch current and the
/// previous-iteration voltage of every node it owns in per-thread locals
/// between the halves — the sweep assignment is the same strided
/// `(level, tid + m·bdim)` pattern in both directions, so the forward
/// half re-reads neither slab from global memory. The locals model
/// registers (with spill to L1 local memory): `⌈n/bdim⌉ · 32 B` per
/// thread per resident scenario, ≈ 0.5 KB each on a 4K-node tree at 256
/// threads. Topology words (impedance, parent, child range, base load)
/// are read once per node and applied to every resident scenario. The
/// per-scenario ∞-norm residual accumulates in per-thread locals and
/// tree-folds through shared memory at the end, so it costs one `f64` of
/// global traffic per scenario.
struct SweepKernel<'a> {
    loads: LoadsRef<'a>,
    v: GlobalMut<'a, Complex>,
    j: GlobalMut<'a, Complex>,
    z: GlobalRef<'a, Complex>,
    parent_pos: GlobalRef<'a, u32>,
    child_lo: GlobalRef<'a, u32>,
    child_hi: GlobalRef<'a, u32>,
    mask: GlobalRef<'a, u32>,
    residuals: GlobalMut<'a, f64>,
    /// Patched solves: per-scenario cut ranges and impedance overrides.
    /// `None` keeps the unpatched path byte-identical (no extra reads,
    /// no extra flops).
    patch: Option<PatchRefs<'a>>,
    /// Patched solves: per-scenario `min |V|` over updated nodes,
    /// overwritten every iteration.
    min_v: Option<GlobalMut<'a, f64>>,
    level_offsets: &'a [u32],
    n: usize,
    /// Scenarios in the chunk (the last block may hold fewer than
    /// [`SCENARIOS_PER_BLOCK`]).
    nb: usize,
}

impl Kernel for SweepKernel<'_> {
    fn name(&self) -> &'static str {
        "tensor_sweep"
    }

    fn block(&self, blk: &mut BlockScope) {
        let group = blk.block_idx_y() * SCENARIOS_PER_BLOCK;
        let group_end = (group + SCENARIOS_PER_BLOCK).min(self.nb);
        let bdim = blk.block_dim();

        // Active resident scenarios with their load scales and patch
        // words; frozen scenarios cost one 4-byte mask read each and
        // drop out.
        let mut members: Vec<Member> = Vec::new();
        blk.threads(|t| {
            if t.tid() == 0 {
                for s_idx in group..group_end {
                    if t.ld(&self.mask, s_idx) != 0 {
                        let scale = match &self.loads {
                            LoadsRef::Scaled { scales, .. } => t.ld(scales, s_idx),
                            LoadsRef::Explicit(_) => 0.0,
                        };
                        let mut mb = Member {
                            s_idx,
                            scale,
                            cut_pos: u32::MAX,
                            cut_lo: u32::MAX,
                            cut_hi: u32::MAX,
                            z_pos: u32::MAX,
                            z_val: Complex::ZERO,
                        };
                        if let Some(pr) = &self.patch {
                            mb.cut_pos = t.ld(&pr.cut_pos, s_idx);
                            mb.cut_lo = t.ld(&pr.cut_lo, s_idx);
                            mb.cut_hi = t.ld(&pr.cut_hi, s_idx);
                            mb.z_pos = t.ld(&pr.z_pos, s_idx);
                            mb.z_val = t.ld(&pr.z_val, s_idx);
                        }
                        members.push(mb);
                    }
                }
            }
        });
        if members.is_empty() {
            return;
        }
        let nm = members.len();

        // Per-thread local slots: thread `t` owns node `off + t + m·bdim`
        // of level `l` at slot `(slot_base[l] + m)·bdim + t`, one bank of
        // slots per resident scenario.
        let nl = self.level_offsets.len() - 1;
        let mut slot_base = vec![0usize; nl + 1];
        for l in 0..nl {
            let w = (self.level_offsets[l + 1] - self.level_offsets[l]) as usize;
            slot_base[l + 1] = slot_base[l] + w.div_ceil(bdim);
        }
        let bank = slot_base[nl] * bdim;
        let mut local_j = vec![Complex::ZERO; nm * bank];
        let mut local_v = vec![Complex::ZERO; nm * bank];

        // Backward half, leaf→root: injection fused in, children summed
        // over their contiguous level-order range. Each current is stored
        // to global (the parent phase and the audit read it there) and
        // kept in this thread's local slot for the forward half, along
        // with the pre-update voltage.
        for l in (0..nl).rev() {
            let off = self.level_offsets[l] as usize;
            let w = self.level_offsets[l + 1] as usize - off;
            let sb = slot_base[l];
            blk.threads(|t| {
                let mut k = t.tid();
                let mut m = 0usize;
                while k < w {
                    let p = off + k;
                    // One topology read per node, shared by the members.
                    let base_sv = match &self.loads {
                        LoadsRef::Scaled { base: bs, .. } => Some(t.ld(bs, p)),
                        LoadsRef::Explicit(_) => None,
                    };
                    let lo = t.ld(&self.child_lo, p) as usize;
                    let hi = t.ld(&self.child_hi, p) as usize;
                    // Cut membership is two compares against the node's
                    // DFS position (one extra topology read, patched
                    // solves only).
                    let dp = match &self.patch {
                        Some(pr) => t.ld(&pr.dfs_pos, p),
                        None => 0,
                    };
                    let slot = (sb + m) * bdim + t.tid();
                    for (qi, mb) in members.iter().enumerate() {
                        if dp >= mb.cut_lo && dp < mb.cut_hi {
                            continue; // de-energized in this scenario
                        }
                        let base = mb.s_idx * self.n;
                        let g = base + p;
                        let sv = match (&self.loads, base_sv) {
                            (_, Some(b)) => {
                                t.flops(2);
                                b * mb.scale
                            }
                            (LoadsRef::Explicit(s), _) => t.ld(s, g),
                            _ => unreachable!("scaled loads stage base_sv"),
                        };
                        let vv = t.ld_mut(&self.v, g);
                        let mut acc = if sv == Complex::ZERO {
                            Complex::ZERO
                        } else {
                            t.flops(Complex::DIV_FLOPS + 1);
                            (sv / vv).conj()
                        };
                        for c in lo..hi {
                            if c as u32 == mb.cut_pos {
                                continue; // the opened branch carries no current
                            }
                            t.flops(Complex::ADD_FLOPS);
                            acc += t.ld_mut(&self.j, base + c);
                        }
                        t.st(&self.j, g, acc);
                        local_j[qi * bank + slot] = acc;
                        local_v[qi * bank + slot] = vv;
                    }
                    k += bdim;
                    m += 1;
                }
            });
        }

        // Forward half, root→leaf: the ladder update reads the parent's
        // fresh voltage from global (written the previous phase) but takes
        // its own current and previous voltage from the local slots. Each
        // member's residual partial accumulates per thread in the exact
        // per-node order of the unfused sweep.
        let mut partial = vec![0.0f64; nm * bdim];
        let mut partial_min = vec![f64::INFINITY; if self.min_v.is_some() { nm * bdim } else { 0 }];
        for (l, &sb) in slot_base.iter().enumerate().take(nl).skip(1) {
            let off = self.level_offsets[l] as usize;
            let w = self.level_offsets[l + 1] as usize - off;
            blk.threads(|t| {
                let tid = t.tid();
                let mut k = tid;
                let mut m = 0usize;
                while k < w {
                    let p = off + k;
                    let parent = t.ld(&self.parent_pos, p) as usize;
                    let zv = t.ld(&self.z, p);
                    let dp = match &self.patch {
                        Some(pr) => t.ld(&pr.dfs_pos, p),
                        None => 0,
                    };
                    let slot = (sb + m) * bdim + tid;
                    for (qi, mb) in members.iter().enumerate() {
                        if dp >= mb.cut_lo && dp < mb.cut_hi {
                            continue; // de-energized: frozen, not folded
                        }
                        let base = mb.s_idx * self.n;
                        let g = base + p;
                        let vp = t.ld_mut(&self.v, base + parent);
                        let jv = local_j[qi * bank + slot];
                        let old = local_v[qi * bank + slot];
                        let zm = if p as u32 == mb.z_pos { mb.z_val } else { zv };
                        let nv = vp - zm * jv;
                        t.flops(Complex::MUL_FLOPS + Complex::ADD_FLOPS + 4);
                        let d = (nv - old).abs();
                        t.st(&self.v, g, nv);
                        t.flops(MaxAbsF64::FLOPS);
                        partial[qi * bdim + tid] =
                            MaxAbsF64::combine(partial[qi * bdim + tid], d);
                        if self.min_v.is_some() {
                            t.flops(2);
                            let slot_min = &mut partial_min[qi * bdim + tid];
                            *slot_min = slot_min.min(nv.abs());
                        }
                    }
                    k += bdim;
                    m += 1;
                }
            });
        }

        // Tree-fold each member's partials and publish its residual
        // (and, for patched solves, its minimum updated `|V|`).
        let sh = blk.shared::<f64>(bdim);
        for (qi, mb) in members.iter().enumerate() {
            blk.threads(|t| {
                t.sts(&sh, t.tid(), partial[qi * bdim + t.tid()]);
            });
            let mut stride = bdim / 2;
            while stride > 0 {
                blk.threads(|t| {
                    let tid = t.tid();
                    if tid < stride {
                        let a = t.lds(&sh, tid);
                        let c = t.lds(&sh, tid + stride);
                        t.flops(MaxAbsF64::FLOPS);
                        t.sts(&sh, tid, MaxAbsF64::combine(a, c));
                    }
                });
                stride /= 2;
            }
            blk.threads(|t| {
                if t.tid() == 0 {
                    let r = t.lds(&sh, 0);
                    t.st(&self.residuals, mb.s_idx, r);
                }
            });
            if let Some(min_buf) = &self.min_v {
                blk.threads(|t| {
                    t.sts(&sh, t.tid(), partial_min[qi * bdim + t.tid()]);
                });
                let mut stride = bdim / 2;
                while stride > 0 {
                    blk.threads(|t| {
                        let tid = t.tid();
                        if tid < stride {
                            let a = t.lds(&sh, tid);
                            let c = t.lds(&sh, tid + stride);
                            t.flops(1);
                            t.sts(&sh, tid, a.min(c));
                        }
                    });
                    stride /= 2;
                }
                blk.threads(|t| {
                    if t.tid() == 0 {
                        let r = t.lds(&sh, 0);
                        t.st(min_buf, mb.s_idx, r);
                    }
                });
            }
        }
    }
}

/// One *no-commit* iteration for the integrity audit: recomputes branch
/// currents and next-iteration voltages into scratch slabs (the resident
/// state is untouched) and writes per-node `|ΔV|`. A scenario at a true
/// fixed point audits at or below its final residual; corrupted state,
/// a premature convergence, or a poisoned stripe audits above tolerance
/// (or NaN) and is routed to the host oracle.
struct AuditKernel<'a> {
    loads: LoadsRef<'a>,
    v: GlobalRef<'a, Complex>,
    j: GlobalRef<'a, Complex>,
    j_audit: GlobalMut<'a, Complex>,
    v_audit: GlobalMut<'a, Complex>,
    delta: GlobalMut<'a, f64>,
    z: GlobalRef<'a, Complex>,
    parent_pos: GlobalRef<'a, u32>,
    child_lo: GlobalRef<'a, u32>,
    child_hi: GlobalRef<'a, u32>,
    /// Patched solves: the audit recomputes under the *same* patched
    /// topology, or every patched scenario would flag suspicious.
    patch: Option<PatchRefs<'a>>,
    level_offsets: &'a [u32],
    n: usize,
}

impl Kernel for AuditKernel<'_> {
    fn name(&self) -> &'static str {
        "tensor_audit"
    }

    fn block(&self, blk: &mut BlockScope) {
        let s_idx = blk.block_idx_y();
        let base = s_idx * self.n;
        let bdim = blk.block_dim();

        let mut scale = 0.0f64;
        let mut cut = (u32::MAX, u32::MAX, u32::MAX); // (pos, lo, hi)
        let mut z_over = (u32::MAX, Complex::ZERO);
        blk.threads(|t| {
            if t.tid() == 0 {
                if let LoadsRef::Scaled { scales, .. } = &self.loads {
                    scale = t.ld(scales, s_idx);
                }
                if let Some(pr) = &self.patch {
                    cut = (
                        t.ld(&pr.cut_pos, s_idx),
                        t.ld(&pr.cut_lo, s_idx),
                        t.ld(&pr.cut_hi, s_idx),
                    );
                    z_over = (t.ld(&pr.z_pos, s_idx), t.ld(&pr.z_val, s_idx));
                }
            }
        });

        let nl = self.level_offsets.len() - 1;
        // Backward into the scratch currents.
        for l in (0..nl).rev() {
            let off = self.level_offsets[l] as usize;
            let w = self.level_offsets[l + 1] as usize - off;
            blk.threads(|t| {
                let mut k = t.tid();
                while k < w {
                    let p = off + k;
                    if let Some(pr) = &self.patch {
                        let dp = t.ld(&pr.dfs_pos, p);
                        if dp >= cut.1 && dp < cut.2 {
                            k += bdim;
                            continue; // de-energized: no recompute
                        }
                    }
                    let g = base + p;
                    let sv = match &self.loads {
                        LoadsRef::Explicit(s) => t.ld(s, g),
                        LoadsRef::Scaled { base: bs, .. } => {
                            let b = t.ld(bs, p);
                            t.flops(2);
                            b * scale
                        }
                    };
                    let mut acc = if sv == Complex::ZERO {
                        Complex::ZERO
                    } else {
                        let vv = t.ld(&self.v, g);
                        t.flops(Complex::DIV_FLOPS + 1);
                        (sv / vv).conj()
                    };
                    let lo = t.ld(&self.child_lo, p) as usize;
                    let hi = t.ld(&self.child_hi, p) as usize;
                    for c in lo..hi {
                        if c as u32 == cut.0 {
                            continue; // the opened branch carries no current
                        }
                        t.flops(Complex::ADD_FLOPS);
                        acc += t.ld_mut(&self.j_audit, base + c);
                    }
                    t.st(&self.j_audit, g, acc);
                    k += bdim;
                }
            });
        }
        // Forward into the scratch voltages, exactly the ladder update.
        // Each position's delta folds the voltage drift with a relative
        // branch-current cross-check: the recomputed current of a true
        // fixed point agrees with the resident one to O(tol), while a
        // flipped exponent bit shifts it by a factor of two or more —
        // this catches corruption of a frozen scenario's current slab,
        // which no voltage-only audit can see.
        for l in 0..nl {
            let off = self.level_offsets[l] as usize;
            let w = self.level_offsets[l + 1] as usize - off;
            blk.threads(|t| {
                let mut k = t.tid();
                while k < w {
                    let p = off + k;
                    let g = base + p;
                    if let Some(pr) = &self.patch {
                        let dp = t.ld(&pr.dfs_pos, p);
                        if dp >= cut.1 && dp < cut.2 {
                            // De-energized nodes audit clean by
                            // definition; the slab is zero-initialised
                            // but write explicitly for clarity.
                            t.st(&self.delta, g, 0.0);
                            k += bdim;
                            continue;
                        }
                    }
                    let ja = t.ld_mut(&self.j_audit, g);
                    let jr = t.ld(&self.j, g);
                    let denom = ja.abs() + jr.abs();
                    t.flops(10);
                    let jerr = if denom > 1e-300 {
                        let rel = (ja - jr).abs() / denom;
                        // NaN currents are flagged alongside mismatches.
                        if rel > 0.25 || rel.is_nan() {
                            f64::INFINITY
                        } else {
                            0.0
                        }
                    } else {
                        0.0
                    };
                    if l == 0 {
                        let root = t.ld(&self.v, g);
                        t.st(&self.v_audit, g, root);
                        t.st(&self.delta, g, jerr);
                    } else {
                        let parent = t.ld(&self.parent_pos, p) as usize;
                        let vp = t.ld_mut(&self.v_audit, base + parent);
                        let zv0 = t.ld(&self.z, p);
                        let zv = if p as u32 == z_over.0 { z_over.1 } else { zv0 };
                        let nv = vp - zv * ja;
                        t.flops(Complex::MUL_FLOPS + Complex::ADD_FLOPS + 4);
                        let old = t.ld(&self.v, g);
                        t.st(&self.v_audit, g, nv);
                        t.flops(MaxAbsF64::FLOPS);
                        t.st(&self.delta, g, MaxAbsF64::combine((nv - old).abs(), jerr));
                    }
                    k += bdim;
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numc::c;
    use powergrid::gen::{balanced_binary, chain, random_tree, star, GenSpec};
    use powergrid::ieee::{ieee13, ieee37};
    use rng::rngs::StdRng;
    use rng::SeedableRng;
    use simt::DeviceProps;

    fn device() -> Device {
        Device::with_workers(DeviceProps::paper_rig(), 2)
    }

    fn solver() -> TensorBatchSolver {
        TensorBatchSolver::new(device())
    }

    fn base_loads(net: &RadialNetwork) -> Vec<Complex> {
        net.buses().iter().map(|b| b.load).collect()
    }

    fn scaled_scenarios(net: &RadialNetwork, scales: &[f64]) -> Vec<Vec<Complex>> {
        let base = base_loads(net);
        scales.iter().map(|&sc| base.iter().map(|&s| s * sc).collect()).collect()
    }

    #[test]
    fn shard_ranges_cover_exactly_and_respect_the_floor() {
        for (n, shards, min) in
            [(96, 3, 16), (100, 3, 33), (5, 8, 2), (0, 4, 1), (20_000, 3, 64)]
        {
            let ranges = shard_ranges(n, shards, min);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= shards);
            // Contiguous, ordered, exactly covering 0..n.
            let mut expect = 0usize;
            for r in &ranges {
                assert_eq!(r.start, expect);
                expect = r.end;
            }
            assert_eq!(expect, n, "n={n} shards={shards} min={min}");
            if ranges.len() > 1 {
                assert!(
                    ranges.iter().all(|r| r.len() >= min),
                    "n={n}: every shard clears the floor, got {ranges:?}"
                );
            }
        }
        // Big shards align interior boundaries to the chunk cap.
        let ranges = shard_ranges(3 * MAX_CHUNK_SCENARIOS + 100, 2, 64);
        assert_eq!(ranges[0].end % MAX_CHUNK_SCENARIOS, 0);
    }

    #[test]
    fn matches_serial_per_scenario_on_ieee_feeders() {
        let cfg = SolverConfig::default();
        for net in [ieee13(), ieee37()] {
            let scales = [0.5, 1.0, 1.3];
            let res = solver().solve(&net, &scaled_scenarios(&net, &scales), &cfg);
            assert!(res.converged(), "{:?}", res.statuses);
            let a = SolverArrays::new(&net);
            for (s, &sc) in scales.iter().enumerate() {
                let mut a2 = a.clone();
                for slot in a2.s.iter_mut() {
                    *slot = *slot * sc;
                }
                let serial = SerialSolver::new(HostProps::paper_rig()).solve_arrays(&a2, &cfg);
                assert_eq!(
                    res.per_scenario_iterations[s], serial.iterations,
                    "scenario {s} iteration parity"
                );
                for bus in 0..net.num_buses() {
                    let d = (res.v[s][bus] - serial.v[bus]).abs();
                    assert!(d < 1e-9, "scenario {s} bus {bus} off by {d}");
                }
            }
        }
    }

    #[test]
    fn scaled_mode_matches_explicit_mode_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = random_tree(300, 6, &GenSpec::default(), &mut rng);
        let cfg = SolverConfig::default();
        let scales: Vec<f64> = (0..9).map(|k| 0.55 + 0.1 * k as f64).collect();
        let explicit = solver().solve(&net, &scaled_scenarios(&net, &scales), &cfg);
        let scaled = solver().solve_scaled(&net, &scales, &cfg);
        assert!(explicit.converged() && scaled.converged());
        assert_eq!(explicit.per_scenario_iterations, scaled.per_scenario_iterations);
        assert_eq!(explicit.residuals, scaled.residuals);
        for s in 0..scales.len() {
            assert_eq!(explicit.v[s], scaled.v[s], "scenario {s}");
            assert_eq!(explicit.j[s], scaled.j[s], "scenario {s}");
        }
    }

    #[test]
    fn chunked_solve_is_identical_to_unchunked() {
        let mut rng = StdRng::seed_from_u64(11);
        let net = random_tree(150, 5, &GenSpec::default(), &mut rng);
        let cfg = SolverConfig::default();
        let scales: Vec<f64> = (0..23).map(|k| 0.6 + 0.03 * k as f64).collect();
        let whole = solver().solve_scaled(&net, &scales, &cfg);
        let chunked = TensorBatchSolver::new(device())
            .with_chunk_scenarios(4)
            .solve_scaled(&net, &scales, &cfg);
        assert_eq!(whole.statuses, chunked.statuses);
        assert_eq!(whole.per_scenario_iterations, chunked.per_scenario_iterations);
        assert_eq!(whole.residuals, chunked.residuals);
        for s in 0..scales.len() {
            assert_eq!(whole.v[s], chunked.v[s], "scenario {s}");
        }
    }

    #[test]
    fn masks_divergent_scenarios_without_perturbing_the_rest() {
        let mut rng = StdRng::seed_from_u64(41);
        let net = random_tree(120, 8, &GenSpec::default(), &mut rng);
        let cfg = SolverConfig::default();
        let healthy = [0.6, 0.9, 1.2];
        let clean = solver().solve(&net, &scaled_scenarios(&net, &healthy), &cfg);
        assert!(clean.converged(), "{:?}", clean.statuses);

        let mut scenarios = scaled_scenarios(&net, &healthy);
        scenarios.push(base_loads(&net).iter().map(|&s| s * 1e6).collect());
        let mixed = solver().solve(&net, &scenarios, &cfg);
        for s in 0..3 {
            assert_eq!(mixed.statuses[s], SolveStatus::Converged);
            assert_eq!(mixed.v[s], clean.v[s], "healthy lane {s} perturbed");
            assert_eq!(
                mixed.per_scenario_iterations[s],
                clean.per_scenario_iterations[s]
            );
        }
        assert!(!mixed.statuses[3].is_converged());
        assert!(!mixed.converged());
        assert_eq!(mixed.worst_status(), mixed.statuses[3]);
        // The sick lane froze early — it must not drag the batch loop.
        assert!(
            mixed.per_scenario_iterations[3] < cfg.max_iter,
            "divergence must freeze early, ran {}",
            mixed.per_scenario_iterations[3]
        );
        assert_eq!(mixed.iterations, clean.iterations);
    }

    #[test]
    fn nan_load_is_a_numerical_failure_with_its_freeze_iteration() {
        let mut rng = StdRng::seed_from_u64(43);
        let net = random_tree(60, 8, &GenSpec::default(), &mut rng);
        let cfg = SolverConfig::default();
        let mut sick = base_loads(&net);
        sick[7] = c(f64::NAN, 0.0);
        let res = solver().solve(&net, &[base_loads(&net), sick], &cfg);
        assert_eq!(res.statuses[0], SolveStatus::Converged);
        match res.statuses[1] {
            SolveStatus::NumericalFailure { at_iteration } => {
                assert_eq!(at_iteration, res.per_scenario_iterations[1]);
                assert!(at_iteration < cfg.max_iter);
            }
            other => panic!("NaN load must be a numerical failure, got {other}"),
        }
    }

    #[test]
    fn stats_only_mode_reports_without_state() {
        let net = ieee37();
        let res = TensorBatchSolver::new(device()).stats_only().solve_scaled(
            &net,
            &[0.8, 1.0, 1.1],
            &SolverConfig::default(),
        );
        assert!(res.converged());
        assert!(res.v.is_empty() && res.j.is_empty());
        assert_eq!(res.per_scenario_iterations.len(), 3);
        assert!(res.scenarios_per_sec > 0.0);
    }

    #[test]
    fn launches_are_one_per_iteration_not_per_level() {
        let mut rng = StdRng::seed_from_u64(17);
        // A deep chain would cost hundreds of launches per iteration in
        // the per-level batch solver.
        let net = chain(512, &GenSpec::default(), &mut rng);
        let mut s = solver();
        let res = s.solve_scaled(&net, &[0.9, 1.0, 1.1, 1.2], &SolverConfig::default());
        assert!(res.converged());
        let kernels = s.device().timeline().breakdown().kernels;
        // 1 fused sweep/iteration + 2 fills; freezing scenarios never add
        // launches.
        assert!(
            kernels as u32 <= res.iterations + 2,
            "expected fused launches, got {kernels} for {} iterations",
            res.iterations
        );
    }

    #[test]
    fn star_and_binary_topologies_converge_and_match_serial() {
        let cfg = SolverConfig::default();
        let spec = GenSpec::default();
        let mut rng = StdRng::seed_from_u64(23);
        for net in [balanced_binary(255, &spec, &mut rng), star(200, &spec, &mut rng)] {
            let res = solver().solve_scaled(&net, &[1.0], &cfg);
            assert!(res.converged());
            let serial =
                SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
            for bus in 0..net.num_buses() {
                let d = (res.v[0][bus] - serial.v[bus]).abs();
                assert!(d < 1e-9, "bus {bus} off by {d}");
            }
        }
    }

    #[test]
    fn invalid_config_short_circuits() {
        let net = ieee13();
        let mut cfg = SolverConfig::default();
        cfg.max_iter = 0;
        let res = solver().solve_scaled(&net, &[1.0, 2.0], &cfg);
        assert_eq!(res.statuses, vec![SolveStatus::InvalidConfig; 2]);
        assert_eq!(res.iterations, 0);
        assert_eq!(res.scenarios_per_sec, 0.0);
    }

    #[test]
    fn single_bus_network_converges_immediately() {
        let mut b = powergrid::NetworkBuilder::new(c(240.0, 0.0));
        b.add_bus(Complex::ZERO);
        let net = b.build().unwrap();
        let res = solver().solve_scaled(&net, &[1.0], &SolverConfig::default());
        assert!(res.converged());
        assert_eq!(res.v[0][0], c(240.0, 0.0));
        assert_eq!(res.per_scenario_iterations, vec![1]);
    }

    #[test]
    fn outage_patch_matches_serial_with_subtree_masked() {
        let net = ieee13();
        let cfg = SolverConfig::default();
        let a = SolverArrays::new(&net);
        let dfs = DfsOrder::new(&net);
        let patches =
            [ScenarioPatch::outage(6), ScenarioPatch::base(), ScenarioPatch::outage(9)];
        let res =
            solver().try_solve_patched_arrays(&a, &dfs, &patches, &cfg, None).unwrap();
        assert!(res.converged(), "{:?}", res.statuses);
        assert_eq!(res.min_v.len(), 3, "patched solves report min |V|");

        let serial = SerialSolver::new(HostProps::paper_rig());
        let plan = PatchPlan::build(&a, &dfs, &patches, None);
        for s in 0..patches.len() {
            let arrays = repair_arrays(&a, &Loads::Scaled(&plan.scales), Some(&plan), s);
            let sref = serial.solve_arrays(&arrays, &cfg);
            assert_eq!(
                res.per_scenario_iterations[s], sref.iterations,
                "scenario {s} iteration parity with the masked serial solve"
            );
            let mut dead = vec![false; net.num_buses()];
            for &b in &plan.isolated[s] {
                dead[b as usize] = true;
            }
            for bus in 0..net.num_buses() {
                if dead[bus] {
                    assert_eq!(res.v[s][bus], Complex::ZERO, "scenario {s} bus {bus}");
                    assert_eq!(res.j[s][bus], Complex::ZERO, "scenario {s} bus {bus}");
                } else {
                    let dv = (res.v[s][bus] - sref.v[bus]).abs();
                    assert!(dv < 1e-9, "scenario {s} bus {bus} off by {dv}");
                }
            }
            let want = host_min_v(&sref.v, plan.root, &plan.isolated[s]);
            assert!(
                (res.min_v[s] - want).abs() < 1e-9,
                "scenario {s} min_v {} vs host fold {want}",
                res.min_v[s]
            );
        }

        // The base-case lane is bitwise the scaled-mode solve.
        let scaled = solver().solve_scaled(&net, &[1.0], &cfg);
        assert_eq!(res.v[1], scaled.v[0]);
        assert_eq!(res.per_scenario_iterations[1], scaled.per_scenario_iterations[0]);
    }

    #[test]
    fn impedance_override_patch_matches_a_rebuilt_network() {
        let net = ieee37();
        let cfg = SolverConfig::default();
        let a = SolverArrays::new(&net);
        let dfs = DfsOrder::new(&net);
        let zb = c(1.9, 0.8);
        let patch =
            ScenarioPatch { z_override: Some((5, zb)), ..ScenarioPatch::default() };
        let res = solver()
            .try_solve_patched_arrays(&a, &dfs, &[patch], &cfg, None)
            .unwrap();
        assert!(res.converged());

        // Reference: rebuild the network with that branch retuned.
        let mut b = powergrid::NetworkBuilder::new(net.source_voltage());
        for bus in net.buses() {
            b.add_bus(bus.load);
        }
        for br in net.branches() {
            b.connect(br.from, br.to, if br.to == 5 { zb } else { br.z });
        }
        let rebuilt = b.build().unwrap();
        let sref = SerialSolver::new(HostProps::paper_rig()).solve(&rebuilt, &cfg);
        for bus in 0..net.num_buses() {
            let dv = (res.v[0][bus] - sref.v[bus]).abs();
            assert!(dv < 1e-9, "bus {bus} off by {dv}");
        }
    }

    #[test]
    fn warm_start_seeds_every_lane_and_never_costs_iterations() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = random_tree(400, 6, &GenSpec::default(), &mut rng);
        let cfg = SolverConfig::default();
        let a = SolverArrays::new(&net);
        let dfs = DfsOrder::new(&net);
        let base = SerialSolver::new(HostProps::paper_rig()).solve_arrays(&a, &cfg);
        assert_eq!(base.status, SolveStatus::Converged);

        let patches = [
            ScenarioPatch { scale: 1.02, ..ScenarioPatch::default() },
            ScenarioPatch::outage(7),
            ScenarioPatch::outage(200),
        ];
        let cold =
            solver().try_solve_patched_arrays(&a, &dfs, &patches, &cfg, None).unwrap();
        let warm = solver()
            .try_solve_patched_arrays(&a, &dfs, &patches, &cfg, Some(&base.v))
            .unwrap();
        assert!(cold.converged() && warm.converged());
        for s in 0..patches.len() {
            assert!(
                warm.per_scenario_iterations[s] <= cold.per_scenario_iterations[s],
                "scenario {s}: warm {} > cold {}",
                warm.per_scenario_iterations[s],
                cold.per_scenario_iterations[s]
            );
            // Both iterates stop within `tol` of the same fixed point,
            // along different paths — they agree to O(tol), not exactly.
            let tol = cfg.tol_volts(a.source.abs());
            for bus in 0..net.num_buses() {
                let dv = (warm.v[s][bus] - cold.v[s][bus]).abs();
                assert!(dv < 2.0 * tol, "scenario {s} bus {bus}: fixed points differ by {dv}");
            }
        }
        // A near-base reload converges strictly faster from the profile.
        assert!(
            warm.per_scenario_iterations[0] < cold.per_scenario_iterations[0],
            "warm start must beat the flat start near the base case"
        );
    }

    #[test]
    fn patched_chunking_and_stats_only_agree_with_the_whole_batch() {
        let mut rng = StdRng::seed_from_u64(29);
        let net = random_tree(180, 5, &GenSpec::default(), &mut rng);
        let cfg = SolverConfig::default();
        let a = SolverArrays::new(&net);
        let dfs = DfsOrder::new(&net);
        let patches: Vec<ScenarioPatch> =
            (1..20).map(ScenarioPatch::outage).collect();
        let whole =
            solver().try_solve_patched_arrays(&a, &dfs, &patches, &cfg, None).unwrap();
        let chunked = TensorBatchSolver::new(device())
            .with_chunk_scenarios(3)
            .try_solve_patched_arrays(&a, &dfs, &patches, &cfg, None)
            .unwrap();
        assert_eq!(whole.statuses, chunked.statuses);
        assert_eq!(whole.per_scenario_iterations, chunked.per_scenario_iterations);
        assert_eq!(whole.min_v, chunked.min_v);
        let stats = TensorBatchSolver::new(device())
            .stats_only()
            .try_solve_patched_arrays(&a, &dfs, &patches, &cfg, None)
            .unwrap();
        assert!(stats.v.is_empty());
        assert_eq!(stats.min_v, whole.min_v);
        assert_eq!(stats.per_scenario_iterations, whole.per_scenario_iterations);
    }

    #[test]
    #[should_panic(expected = "root")]
    fn outage_of_the_root_is_rejected() {
        let net = ieee13();
        solver().solve_patched(
            &net,
            &[ScenarioPatch::outage(0)],
            &SolverConfig::default(),
            None,
        );
    }

    #[test]
    fn throughput_headline_is_positive_and_finite() {
        let net = ieee37();
        let res = solver().solve_scaled(&net, &[0.9, 1.0], &SolverConfig::default());
        assert!(res.scenarios_per_sec.is_finite() && res.scenarios_per_sec > 0.0);
        let expect = 2.0 / (res.timing.total_us() * 1e-6);
        assert!((res.scenarios_per_sec - expect).abs() < 1e-6 * expect);
    }

    #[test]
    fn per_scenario_warm_start_matches_cold_and_cuts_iterations() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = balanced_binary(511, &GenSpec::default(), &mut rng);
        let arrays = SolverArrays::new(&net);
        let cfg = SolverConfig::default();
        let scenarios = scaled_scenarios(&net, &[0.8, 1.0, 1.2]);

        let cold = solver().try_solve_arrays(&arrays, &scenarios, &cfg).unwrap();
        assert!(cold.converged());

        // Warm-starting each scenario from its own converged profile
        // must reconverge almost immediately, to the same fixed point
        // (modulo the tolerance band both iterations stop inside).
        let warm = solver()
            .try_solve_arrays_warm(&arrays, &scenarios, &cfg, &cold.v)
            .unwrap();
        assert!(warm.converged());
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {} iterations",
            warm.iterations,
            cold.iterations
        );
        let tol = 1e-7 * net.source_voltage().abs();
        for s in 0..scenarios.len() {
            for (a, b) in warm.v[s].iter().zip(&cold.v[s]) {
                assert!((*a - *b).abs() <= tol, "{a:?} vs {b:?}");
            }
        }

        // Mismatched shapes are a caller bug, not device weather.
        let short: Vec<Vec<Complex>> = cold.v[..2].to_vec();
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            solver().try_solve_arrays_warm(&arrays, &scenarios, &cfg, &short)
        }));
        assert!(r.is_err(), "short warm slate must panic");
    }

    #[test]
    fn outer_session_matches_the_one_shot_batch_and_reads_back_probes() {
        let mut rng = StdRng::seed_from_u64(11);
        let net = balanced_binary(255, &GenSpec::default(), &mut rng);
        let arrays = SolverArrays::new(&net);
        let cfg = SolverConfig::default();
        let scenarios = scaled_scenarios(&net, &[0.7, 1.0, 1.3]);
        let probes = vec![1usize, 57, 200, 254];

        let oneshot = solver().try_solve_arrays(&arrays, &scenarios, &cfg).unwrap();
        assert!(oneshot.converged());

        let mut tbs = solver();
        let mut session = tbs.outer_session(&arrays, &scenarios, &probes, None, &cfg);
        let round = session.solve_round(&cfg);
        assert!(round.statuses.iter().all(|s| s.is_converged()), "{:?}", round.statuses);
        let report = session.finish(&cfg);
        assert!(!report.degraded);
        assert_eq!(report.retries, 0);
        assert!(report.total_us > 0.0);

        let tol = 1e-9 * net.source_voltage().abs();
        for s in 0..scenarios.len() {
            for (bus, (a, b)) in report.v[s].iter().zip(&oneshot.v[s]).enumerate() {
                assert!((*a - *b).abs() <= tol, "scenario {s} bus {bus}: {a:?} vs {b:?}");
            }
            // The probe readback is the final state at those buses.
            for (k, &bus) in probes.iter().enumerate() {
                assert_eq!(round.probe_v[s][k], report.v[s][bus], "scenario {s} probe {bus}");
            }
        }
    }

    #[test]
    fn outer_session_sparse_updates_and_retirement_track_serial_resolves() {
        let mut rng = StdRng::seed_from_u64(13);
        let net = balanced_binary(127, &GenSpec::default(), &mut rng);
        let arrays = SolverArrays::new(&net);
        let cfg = SolverConfig::default();
        let mut scenarios = scaled_scenarios(&net, &[0.9, 1.1]);
        let v0 = net.source_voltage().abs();

        let mut tbs = solver();
        let mut session = tbs.outer_session(&arrays, &scenarios, &[64], None, &cfg);
        let first = session.solve_round(&cfg);
        assert!(first.statuses.iter().all(|s| s.is_converged()));

        // Scenario 0 retires at its round-1 state; scenario 1 takes a
        // sparse load bump and re-solves warm.
        session.retire(0);
        let bump = scenarios[1][30] * 1.5 + c(2_000.0, 500.0);
        scenarios[1][30] = bump;
        session.update_loads(&[(1, 30, bump)]);
        let second = session.solve_round(&cfg);
        assert_eq!(second.iterations[0], 0, "retired scenario must not iterate");
        assert!(second.statuses[1].is_converged());
        let report = session.finish(&cfg);

        // Both scenarios land on the serial fixed points of their own
        // final loads (within the band both solvers stop inside).
        let serial = SerialSolver::new(HostProps::paper_rig());
        for (s, loads) in scenarios.iter().enumerate() {
            let mut a2 = arrays.clone();
            for (p, slot) in a2.s.iter_mut().enumerate() {
                *slot = loads[arrays.levels.order[p] as usize];
            }
            let want = serial.solve_arrays(&a2, &cfg);
            assert!(want.converged());
            for (bus, (a, w)) in report.v[s].iter().zip(&want.v).enumerate() {
                assert!(
                    (*a - *w).abs() <= 1e-5 * v0,
                    "scenario {s} bus {bus}: {a:?} vs serial {w:?}"
                );
            }
        }
    }

    #[test]
    fn outer_session_absorbs_faults_and_still_lands_on_the_fixed_point() {
        let mut rng = StdRng::seed_from_u64(17);
        let net = balanced_binary(127, &GenSpec::default(), &mut rng);
        let arrays = SolverArrays::new(&net);
        let cfg = SolverConfig::default();
        let scenarios = scaled_scenarios(&net, &[0.8, 1.0, 1.2]);
        let v0 = net.source_voltage().abs();

        let serial = SerialSolver::new(HostProps::paper_rig());
        for seed in 0..6u64 {
            let mut dev = device();
            dev.arm_faults(simt::FaultPlan::seeded(0x5E55 + seed, 0.05));
            let mut tbs = TensorBatchSolver::new(dev);
            let mut session = tbs.outer_session(&arrays, &scenarios, &[1], None, &cfg);
            let round = session.solve_round(&cfg);
            assert!(
                round.statuses.iter().all(|s| s.is_converged()),
                "seed {seed}: {:?}",
                round.statuses
            );
            let report = session.finish(&cfg);
            // Whether the round survived on-device, rebuilt, or fell
            // back to the host, the answer is the same fixed point.
            for (s, loads) in scenarios.iter().enumerate() {
                let mut a2 = arrays.clone();
                for (p, slot) in a2.s.iter_mut().enumerate() {
                    *slot = loads[arrays.levels.order[p] as usize];
                }
                let want = serial.solve_arrays(&a2, &cfg);
                for (bus, (a, w)) in report.v[s].iter().zip(&want.v).enumerate() {
                    assert!(
                        (*a - *w).abs() <= 1e-5 * v0,
                        "seed {seed} scenario {s} bus {bus}: {a:?} vs {w:?} \
                         (degraded {}, retries {})",
                        report.degraded,
                        report.retries
                    );
                }
            }
        }
    }
}
