//! Solver-side telemetry instrumentation.
//!
//! Every solver owns an optional [`Recorder`] (attached with its
//! `with_recorder` builder). The [`Obs`] wrapper keeps the hot loops
//! clean: when no recorder is attached every call is a no-op on an
//! `Option` check, so un-instrumented solves pay nothing measurable.
//!
//! Naming scheme (shared by all solvers so exports line up across
//! backends):
//!
//! * spans — `iter` (category = the solver's own, e.g. `solver.gpu`) and
//!   per-phase children (category `phase`), both on the solver track;
//! * counters — `solver.residual` sampled once per iteration;
//! * histograms — `solver.iteration_us`;
//! * gauges — `phase.*_us` / `transfer_us` / `solver.iterations` /
//!   `solver.residual`, written once per run by [`record_run`], which is
//!   what the run-summary reconciliation test reads.

use telemetry::trace::ArgValue;
use telemetry::{Recorder, Trace};

use crate::report::{FaultReport, Timing};
use crate::status::SolveStatus;

/// A short machine-friendly key for a status (no payload fields), used in
/// counter names like `solve.status.converged`.
pub fn status_key(status: &SolveStatus) -> &'static str {
    match status {
        SolveStatus::Converged => "converged",
        SolveStatus::Recovered { .. } => "recovered",
        SolveStatus::MaxIterations => "max-iterations",
        SolveStatus::Diverged { .. } => "diverged",
        SolveStatus::NumericalFailure { .. } => "numerical-failure",
        SolveStatus::DeadlineExceeded { .. } => "deadline-exceeded",
        SolveStatus::InvalidConfig => "invalid-config",
        SolveStatus::OuterDiverged { .. } => "outer-diverged",
    }
}

/// Cheap per-solver observation handle: `None` recorder = no-op.
#[derive(Clone, Debug, Default)]
pub(crate) struct Obs {
    rec: Option<Recorder>,
    cat: &'static str,
}

impl Obs {
    /// An observation handle for a solver category such as `solver.serial`.
    pub(crate) fn new(rec: Option<&Recorder>, cat: &'static str) -> Self {
        let obs = Obs { rec: rec.cloned(), cat };
        if let Some(r) = &obs.rec {
            r.name_thread(Trace::TID_SOLVER, "solver (modeled)");
        }
        obs
    }

    /// Record one solver iteration as a span plus residual sample.
    pub(crate) fn iteration(&self, iter: u32, start_us: f64, end_us: f64, residual: f64) {
        if let Some(r) = &self.rec {
            let dur = end_us - start_us;
            r.span_with(
                Trace::TID_SOLVER,
                self.cat,
                "iter",
                start_us,
                dur,
                vec![
                    ("iter".to_string(), ArgValue::U64(u64::from(iter))),
                    ("residual".to_string(), ArgValue::F64(residual)),
                ],
            );
            r.counter_sample("solver.residual", end_us, residual);
            r.observe("solver.iteration_us", dur);
        }
    }

    /// Record one sweep phase (injection/backward/forward/...) within an
    /// iteration as a nested span.
    pub(crate) fn phase(&self, name: &'static str, start_us: f64, end_us: f64) {
        if let Some(r) = &self.rec {
            r.span(Trace::TID_SOLVER, "phase", name, start_us, end_us - start_us);
        }
    }

    /// Record a point event (checkpoint taken, rollback, backend switch)
    /// on the solver track.
    pub(crate) fn instant(&self, name: &'static str, ts_us: f64) {
        if let Some(r) = &self.rec {
            r.instant(Trace::TID_SOLVER, self.cat, name, ts_us);
        }
    }

    /// Record one scenario chunk of a tensor-batched solve as a span on
    /// the solver track, tagged with its index and scenario count.
    pub(crate) fn batch_chunk(&self, chunk: usize, scenarios: usize, start_us: f64, end_us: f64) {
        if let Some(r) = &self.rec {
            r.span_with(
                Trace::TID_SOLVER,
                self.cat,
                "chunk",
                start_us,
                end_us - start_us,
                vec![
                    ("chunk".to_string(), ArgValue::U64(chunk as u64)),
                    ("scenarios".to_string(), ArgValue::U64(scenarios as u64)),
                ],
            );
        }
    }

    /// Record whole-batch throughput once per solve.
    pub(crate) fn batch_summary(&self, scenarios: usize, scenarios_per_sec: f64) {
        if let Some(r) = &self.rec {
            r.counter_add("batch.scenarios", scenarios as u64);
            r.gauge_set("batch.scenarios_per_sec", scenarios_per_sec);
        }
    }
}

/// Record a finished run into `rec`: per-phase modeled-time gauges (the
/// values the run summary reconciles against the `simt::Timeline` phase
/// report), aggregate phase spans on their own track, status counters,
/// and — when present — the recovery counters from the fault report.
pub fn record_run(
    rec: &Recorder,
    timing: &Timing,
    iterations: u32,
    residual: f64,
    status: &SolveStatus,
    fault_report: Option<&FaultReport>,
) {
    let p = &timing.phases;
    rec.gauge_set("phase.setup_us", p.setup_us);
    rec.gauge_set("phase.injection_us", p.injection_us);
    rec.gauge_set("phase.backward_us", p.backward_us);
    rec.gauge_set("phase.forward_us", p.forward_us);
    rec.gauge_set("phase.convergence_us", p.convergence_us);
    rec.gauge_set("phase.teardown_us", p.teardown_us);
    rec.gauge_set("phase.total_us", p.total_us());
    rec.gauge_set("phase.sweep_us", p.sweep_us());
    rec.gauge_set("transfer_us", timing.transfer_us);
    rec.gauge_set("transfer_sweep_us", timing.transfer_sweep_us);
    rec.gauge_set("solver.iterations", f64::from(iterations));
    rec.gauge_set("solver.residual", residual);
    rec.counter_add("solve.runs", 1);
    rec.counter_add(&format!("solve.status.{}", status_key(status)), 1);

    // Aggregate per-phase totals as back-to-back spans on a separate
    // track: the E3 breakdown at one glance in the trace viewer.
    rec.name_thread(Trace::TID_PHASES, "phase totals");
    let mut clock = 0.0;
    for (name, us) in [
        ("setup", p.setup_us),
        ("injection", p.injection_us),
        ("backward", p.backward_us),
        ("forward", p.forward_us),
        ("convergence", p.convergence_us),
        ("teardown", p.teardown_us),
    ] {
        if us > 0.0 {
            rec.span(Trace::TID_PHASES, "phase-total", name, clock, us);
            clock += us;
        }
    }

    if let Some(fr) = fault_report {
        rec.counter_add("recovery.faults_injected", u64::from(fr.faults_injected));
        rec.counter_add("recovery.rollbacks", u64::from(fr.rollbacks));
        rec.counter_add("recovery.retries", u64::from(fr.retries));
        rec.counter_add("recovery.checkpoints", u64::from(fr.checkpoints));
        rec.gauge_set("recovery.checkpoint_us", fr.checkpoint_us);
        rec.counter_add(
            "integrity.corruptions_detected",
            u64::from(fr.corruptions_detected),
        );
        for backend in &fr.backends {
            rec.counter_add(&format!("recovery.backend.{backend}"), 1);
        }
    }
}

/// Record a finished meshed/DG run into `rec`: the inner-solve gauges
/// of [`record_run`] plus the `mesh.*` run-summary gauges — outer
/// iterations, final break-point and PV mismatches, loop/generator
/// counts and the mode-flip total.
pub fn record_mesh_run(rec: &Recorder, res: &crate::mesh::MeshResult) {
    record_run(
        rec,
        &res.inner.timing,
        res.inner.iterations,
        res.inner.residual,
        &res.status,
        res.inner.fault_report.as_ref(),
    );
    rec.gauge_set("mesh.outer_iterations", f64::from(res.outer_iterations));
    rec.gauge_set("mesh.breakpoint_residual", res.breakpoint_residual);
    rec.gauge_set("mesh.pv_error", res.pv_error);
    rec.gauge_set("mesh.loops", res.loop_currents.len() as f64);
    rec.gauge_set("mesh.gens", res.q_gen.len() as f64);
    rec.gauge_set("mesh.mode_flips", f64::from(res.mode_flips));
}

/// The three-phase sibling of [`record_mesh_run`] (no break points —
/// three-phase networks are radial, so only the PV gauges apply).
pub fn record_mesh3_run(rec: &Recorder, res: &crate::mesh::Mesh3Result) {
    record_run(rec, &res.inner.timing, res.inner.iterations, res.inner.residual, &res.status, None);
    rec.gauge_set("mesh.outer_iterations", f64::from(res.outer_iterations));
    rec.gauge_set("mesh.pv_error", res.pv_error);
    rec.gauge_set("mesh.gens", res.q_gen.len() as f64);
    rec.gauge_set("mesh.mode_flips", f64::from(res.mode_flips));
}

/// Record a finished tensor-batch run into `rec`: the phase gauges of
/// [`record_run`] plus the batch-level counters — scenario count, one
/// status counter per scenario outcome, and the `scenarios_per_sec`
/// throughput headline the E9 experiment reports.
pub fn record_batch_run(
    rec: &Recorder,
    timing: &Timing,
    iterations: u32,
    residual: f64,
    statuses: &[SolveStatus],
    scenarios_per_sec: f64,
    fault_report: Option<&FaultReport>,
) {
    let worst = statuses.iter().fold(SolveStatus::Converged, |w, &s| w.worse(s));
    record_run(rec, timing, iterations, residual, &worst, fault_report);
    rec.counter_add("batch.scenarios", statuses.len() as u64);
    rec.gauge_set("batch.scenarios_per_sec", scenarios_per_sec);
    for status in statuses {
        rec.counter_add(&format!("batch.status.{}", status_key(status)), 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::PhaseTimes;

    fn timing() -> Timing {
        Timing {
            phases: PhaseTimes {
                setup_us: 10.0,
                injection_us: 20.0,
                backward_us: 40.0,
                forward_us: 25.0,
                convergence_us: 4.0,
                teardown_us: 1.0,
            },
            transfer_us: 8.0,
            transfer_sweep_us: 2.0,
            wall_us: 12345.0,
        }
    }

    #[test]
    fn record_run_writes_reconciling_phase_gauges() {
        let rec = Recorder::new();
        record_run(&rec, &timing(), 7, 1e-9, &SolveStatus::Converged, None);
        let (trace, reg) = rec.snapshot();

        let gauges: std::collections::BTreeMap<&str, f64> = reg.gauges().collect();
        let parts = ["setup", "injection", "backward", "forward", "convergence", "teardown"]
            .iter()
            .map(|p| gauges[format!("phase.{p}_us").as_str()])
            .sum::<f64>();
        assert_eq!(parts, gauges["phase.total_us"]);
        assert_eq!(gauges["solver.iterations"], 7.0);

        let counters: std::collections::BTreeMap<&str, u64> = reg.counters().collect();
        assert_eq!(counters["solve.runs"], 1);
        assert_eq!(counters["solve.status.converged"], 1);

        // The phase-total track replays the breakdown as contiguous spans.
        assert_eq!(trace.total_us_in_cat("phase-total"), gauges["phase.total_us"]);
    }

    #[test]
    fn record_run_folds_in_the_fault_report() {
        let rec = Recorder::new();
        let fr = FaultReport {
            faults_injected: 3,
            rollbacks: 2,
            retries: 2,
            checkpoints: 5,
            checkpoint_us: 42.0,
            backends: vec!["gpu".to_string(), "cpu".to_string()],
            corruptions_detected: 1,
        };
        record_run(
            &rec,
            &timing(),
            9,
            1e-7,
            &SolveStatus::Recovered { faults: 3, retries: 2 },
            Some(&fr),
        );
        let (_, reg) = rec.snapshot();
        let counters: std::collections::BTreeMap<&str, u64> = reg.counters().collect();
        assert_eq!(counters["recovery.faults_injected"], 3);
        assert_eq!(counters["recovery.rollbacks"], 2);
        assert_eq!(counters["recovery.checkpoints"], 5);
        assert_eq!(counters["solve.status.recovered"], 1);
        assert_eq!(counters["recovery.backend.gpu"], 1);
        assert_eq!(counters["recovery.backend.cpu"], 1);
        assert_eq!(counters["integrity.corruptions_detected"], 1);
    }

    #[test]
    fn record_batch_run_counts_every_scenario_status() {
        let rec = Recorder::new();
        let statuses = [
            SolveStatus::Converged,
            SolveStatus::Converged,
            SolveStatus::Diverged { at_iteration: 4 },
        ];
        record_batch_run(&rec, &timing(), 9, 2e-4, &statuses, 1234.5, None);
        let (_, reg) = rec.snapshot();
        let counters: std::collections::BTreeMap<&str, u64> = reg.counters().collect();
        assert_eq!(counters["batch.scenarios"], 3);
        assert_eq!(counters["batch.status.converged"], 2);
        assert_eq!(counters["batch.status.diverged"], 1);
        // The run-level status is the worst scenario outcome.
        assert_eq!(counters["solve.status.diverged"], 1);
        let gauges: std::collections::BTreeMap<&str, f64> = reg.gauges().collect();
        assert_eq!(gauges["batch.scenarios_per_sec"], 1234.5);
    }

    #[test]
    fn status_keys_are_stable_and_distinct() {
        let statuses = [
            SolveStatus::Converged,
            SolveStatus::Recovered { faults: 1, retries: 1 },
            SolveStatus::MaxIterations,
            SolveStatus::InvalidConfig,
        ];
        let keys: std::collections::BTreeSet<&str> =
            statuses.iter().map(status_key).collect();
        assert_eq!(keys.len(), statuses.len(), "keys must be distinct");
        assert!(keys.contains("converged") && keys.contains("recovered"));
    }
}
