//! Solve results and timing reports.

use numc::Complex;

use crate::status::SolveStatus;

/// Modeled time per solver phase, µs.
///
/// For the GPU solver these are modeled *device* microseconds from the
/// [`simt`] timing model (kernels attributed to the phase that launched
/// them); for the CPU solvers they come from the [`simt::HostProps`]
/// roofline model. Wall-clock of the simulation is reported separately
/// and never used in speedup claims.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    /// One-time setup: topology upload (GPU) or array construction (CPU).
    pub setup_us: f64,
    /// Injection-current kernel/loop (`I = conj(S/V)`).
    pub injection_us: f64,
    /// Backward sweep (child-current aggregation).
    pub backward_us: f64,
    /// Forward sweep (voltage propagation).
    pub forward_us: f64,
    /// Convergence check (∞-norm reduction + host read-back).
    pub convergence_us: f64,
    /// Result download (GPU) — zero for CPU solvers.
    pub teardown_us: f64,
}

impl PhaseTimes {
    /// Total across phases.
    pub fn total_us(&self) -> f64 {
        self.setup_us
            + self.injection_us
            + self.backward_us
            + self.forward_us
            + self.convergence_us
            + self.teardown_us
    }

    /// The iterative portion (excludes setup/teardown) — the paper's
    /// "parts of the computation that entirely run on the GPU".
    pub fn sweep_us(&self) -> f64 {
        self.injection_us + self.backward_us + self.forward_us + self.convergence_us
    }
}

/// Timing summary of one solve.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Timing {
    /// Modeled time per phase.
    pub phases: PhaseTimes,
    /// Modeled µs spent in host↔device transfers (subset of phase times;
    /// zero for CPU solvers).
    pub transfer_us: f64,
    /// The portion of `transfer_us` incurred inside the iterative sweep
    /// phases (the per-iteration convergence scalar read-back); the rest
    /// belongs to setup/teardown. Zero for CPU solvers.
    pub transfer_sweep_us: f64,
    /// Host wall-clock of the run, µs (simulation cost — diagnostic only).
    pub wall_us: f64,
}

impl Timing {
    /// Total modeled time.
    pub fn total_us(&self) -> f64 {
        self.phases.total_us()
    }

    /// Modeled time excluding all transfers — the "GPU-only" number the
    /// abstract's scaling claim is about.
    pub fn compute_only_us(&self) -> f64 {
        self.phases.total_us() - self.transfer_us
    }

    /// Modeled time of the iterative sweep phases with their embedded
    /// transfers (the convergence read-back) removed: the part of the
    /// solve that is pure kernel execution.
    pub fn sweep_kernel_us(&self) -> f64 {
        (self.phases.sweep_us() - self.transfer_sweep_us).max(0.0)
    }
}

/// What the resilient supervisor had to do to finish a solve.
///
/// Attached to [`SolveResult::fault_report`] only by
/// `recovery::ResilientSolver`; plain solver calls leave it `None`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultReport {
    /// Device faults injected/observed across every attempt.
    pub faults_injected: u32,
    /// Rollbacks to a checkpoint (includes full restarts).
    pub rollbacks: u32,
    /// Retry budget consumed (every rollback and fresh-device restart
    /// charges one retry).
    pub retries: u32,
    /// Checkpoints taken across every attempt.
    pub checkpoints: u32,
    /// Modeled µs spent taking checkpoints (device→host voltage copies).
    pub checkpoint_us: f64,
    /// Backends tried, in order, ending with the one that produced the
    /// result (e.g. `["gpu", "multicore"]` after one degradation).
    pub backends: Vec<String>,
    /// Checked-transfer CRC mismatches detected (and retried) across
    /// every attempt. Every one of these was *caught* — an undetected
    /// corruption by definition never lands here.
    pub corruptions_detected: u32,
}

impl FaultReport {
    /// The backend that produced the result.
    pub fn final_backend(&self) -> &str {
        self.backends.last().map(String::as_str).unwrap_or("")
    }

    /// Whether the supervisor had to abandon the preferred backend.
    pub fn degraded(&self) -> bool {
        self.backends.len() > 1
    }
}

/// The result of one power-flow solve.
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// Bus voltage phasors, indexed by bus id, volts.
    pub v: Vec<Complex>,
    /// Branch current flowing *into* each bus from its parent, indexed by
    /// bus id, amperes. At the root this is the total feeder current.
    pub j: Vec<Complex>,
    /// Iterations executed.
    pub iterations: u32,
    /// How the iteration loop ended (convergence, iteration cap,
    /// divergence, or numerical failure).
    pub status: SolveStatus,
    /// Final `max_p |ΔV_p|`, volts.
    pub residual: f64,
    /// Per-iteration `max_p |ΔV_p|` history (length = `iterations`);
    /// geometric decay here is the solver-health signal E5 plots.
    pub residual_history: Vec<f64>,
    /// Timing summary.
    pub timing: Timing,
    /// Recovery bookkeeping — `Some` only when the solve ran under the
    /// resilient supervisor.
    pub fault_report: Option<FaultReport>,
}

impl SolveResult {
    /// Whether the convergence criterion was met within the cap.
    pub fn converged(&self) -> bool {
        self.status.is_converged()
    }

    /// Convergence-rate estimate: geometric mean of successive residual
    /// ratios over the recorded history (`None` with fewer than 3
    /// iterations). Healthy FBS runs sit well below 1.
    pub fn convergence_rate(&self) -> Option<f64> {
        let h = &self.residual_history;
        if h.len() < 3 {
            return None;
        }
        // Skip the first ratio (flat-start transient).
        let ratios: Vec<f64> =
            h.windows(2).skip(1).filter(|w| w[0] > 0.0).map(|w| w[1] / w[0]).collect();
        if ratios.is_empty() {
            return None;
        }
        let log_sum: f64 = ratios.iter().map(|r| r.ln()).sum();
        Some((log_sum / ratios.len() as f64).exp())
    }

    /// Total series losses `Σ z·|J|²` over all branches, VA.
    pub fn losses(&self, net: &powergrid::RadialNetwork) -> Complex {
        let mut total = Complex::ZERO;
        for bus in 0..net.num_buses() {
            if let Some(br) = net.parent_branch(bus) {
                total += br.z * self.j[bus].norm_sqr();
            }
        }
        total
    }

    /// Apparent power delivered by the substation, VA:
    /// `S = V₀ · conj(J_root)`.
    pub fn source_power(&self, net: &powergrid::RadialNetwork) -> Complex {
        net.source_voltage() * self.j[net.root()].conj()
    }

    /// Minimum voltage magnitude and the bus where it occurs.
    ///
    /// On corrupt results a non-finite magnitude is surfaced (the first
    /// NaN/Inf bus wins) instead of being dropped by the comparison —
    /// `NaN < acc` is always false, so a plain fold would report `(∞, 0)`
    /// for a fully-NaN voltage profile.
    pub fn min_voltage(&self) -> (f64, usize) {
        min_magnitude_surfacing_nonfinite(self.v.iter().map(|v| v.abs()))
    }
}

/// The result a solver returns when [`crate::SolverConfig::validate`]
/// fails: flat-start voltages, zero iterations, an infinite residual and
/// `SolveStatus::InvalidConfig`. The solve never ran.
pub(crate) fn invalid_config_result(n: usize, v0: Complex) -> SolveResult {
    SolveResult {
        v: vec![v0; n],
        j: vec![Complex::ZERO; n],
        iterations: 0,
        status: SolveStatus::InvalidConfig,
        residual: f64::INFINITY,
        residual_history: Vec::new(),
        timing: Timing::default(),
        fault_report: None,
    }
}

/// Folds magnitudes to (min, index), except that the first non-finite
/// entry short-circuits the fold and is returned as-is.
pub(crate) fn min_magnitude_surfacing_nonfinite(
    mags: impl Iterator<Item = f64>,
) -> (f64, usize) {
    let mut acc = (f64::INFINITY, 0);
    for (i, m) in mags.enumerate() {
        if !m.is_finite() {
            return (m, i);
        }
        if m < acc.0 {
            acc = (m, i);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use numc::c;

    #[test]
    fn phase_totals_add_up() {
        let p = PhaseTimes {
            setup_us: 1.0,
            injection_us: 2.0,
            backward_us: 3.0,
            forward_us: 4.0,
            convergence_us: 5.0,
            teardown_us: 6.0,
        };
        assert_eq!(p.total_us(), 21.0);
        assert_eq!(p.sweep_us(), 14.0);
        let t = Timing { phases: p, transfer_us: 7.0, transfer_sweep_us: 3.0, wall_us: 0.0 };
        assert_eq!(t.total_us(), 21.0);
        assert_eq!(t.compute_only_us(), 14.0);
        assert_eq!(t.sweep_kernel_us(), 11.0);
    }

    fn result_with(v: Vec<Complex>) -> SolveResult {
        SolveResult {
            j: vec![Complex::ZERO; v.len()],
            v,
            iterations: 1,
            status: SolveStatus::Converged,
            residual: 0.0,
            residual_history: vec![0.0],
            timing: Timing::default(),
            fault_report: None,
        }
    }

    #[test]
    fn min_voltage_finds_the_sag() {
        let r = result_with(vec![c(100.0, 0.0), c(98.0, -1.0), c(99.0, 0.0)]);
        let (mag, bus) = r.min_voltage();
        assert_eq!(bus, 1);
        assert!((mag - c(98.0, -1.0).abs()).abs() < 1e-12);
        assert!(r.converged());
    }

    #[test]
    fn min_voltage_surfaces_nan_instead_of_reporting_infinity() {
        let r = result_with(vec![c(100.0, 0.0), c(f64::NAN, 0.0), c(99.0, 0.0)]);
        let (mag, bus) = r.min_voltage();
        assert!(mag.is_nan(), "corrupt profile must surface NaN, got {mag}");
        assert_eq!(bus, 1, "and point at the corrupt bus");
    }

    #[test]
    fn min_voltage_surfaces_infinite_magnitudes() {
        let r = result_with(vec![c(100.0, 0.0), c(99.0, 0.0), c(f64::INFINITY, 0.0)]);
        let (mag, bus) = r.min_voltage();
        assert_eq!(mag, f64::INFINITY);
        assert_eq!(bus, 2);
    }
}
