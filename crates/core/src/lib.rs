//! # fbs — forward-backward sweep power-flow solvers
//!
//! The primary contribution of the reproduced paper: power-flow solvers
//! for radial distribution networks based on the ladder-iterative
//! forward-backward sweep, in three implementations sharing one
//! convergence criterion and one data layout —
//!
//! * [`SerialSolver`] — the paper's CPU baseline,
//! * [`GpuSolver`] — the paper's contribution: level-synchronous sweeps
//!   on the [`simt`] device using segmented scan and reduction,
//! * [`MulticoreSolver`] — a level-parallel host-thread solver (ablation).
//!
//! Post-solve physics checks live in [`validate`].
//!
//! ```
//! use fbs::{GpuSolver, SerialSolver, SolverConfig};
//! use powergrid::ieee::ieee13;
//! use simt::{Device, HostProps};
//!
//! let net = ieee13();
//! let cfg = SolverConfig::default();
//! let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
//! let gpu = GpuSolver::new(Device::paper_rig()).solve(&net, &cfg);
//! assert!(serial.converged() && gpu.converged());
//! assert!((serial.v[6] - gpu.v[6]).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

mod arrays;
pub mod batch;
mod config;
pub mod contingency;
pub mod fleet;
mod gpu;
pub mod integrity;
pub mod jump;
pub mod mesh;
mod multicore;
pub mod obs;
mod recovery;
mod report;
mod serial;
pub mod service;
mod status;
pub mod tensor_batch;
pub mod three_phase;
pub mod validate;

pub use arrays::SolverArrays;
pub use batch::{BatchResult, BatchSolver};
pub use config::{ConfigError, SolverConfig};
pub use contingency::{ContingencyOutcome, ContingencyScreener, ScreeningReport};
pub use fleet::{
    DeviceHealth, FleetConfig, FleetRequest, FleetResponse, FleetService, FleetStats,
    Priority, ShedReason,
};
pub use gpu::{BackwardStrategy, GpuSolver};
pub use integrity::{IntegrityConfig, IntegritySampler, IntegrityStats, IntegrityVerdict};
pub use jump::{JumpArrays, JumpSolver};
pub use mesh::{
    solve3_dg, solve3_dg_resilient, solve_dg_batch, solve_meshed_resilient, DgBatchResult,
    GenMode, Mesh3Result, MeshProblem, MeshResult, MeshSolver, MeshState, OuterConfig,
    OuterStatus, Sweep3Backend, SweepBackend,
};
pub use multicore::MulticoreSolver;
pub use obs::{record_batch_run, record_mesh3_run, record_mesh_run, record_run};
pub use recovery::{Backend, Resilient3Solver, ResilienceError, ResilientSolver};
pub use report::{FaultReport, PhaseTimes, SolveResult, Timing};
pub use serial::SerialSolver;
pub use service::{
    BreakerState, Deadline, Outcome, Request, Response, ServiceConfig, ServiceStats,
    SolveService,
};
pub use status::{ConvergenceMonitor, SolveStatus};
pub use tensor_batch::{ScenarioPatch, TensorBatchResult, TensorBatchSolver};
pub use three_phase::{Arrays3, Gpu3Solver, Serial3Solver, Solve3Result};
