//! N-1 contingency screening on the tensor-batched engine.
//!
//! The planning question behind a contingency screen: *if any single
//! line of the feeder trips, does the rest of the system still converge
//! to an acceptable operating point?* Classically this is answered by
//! rebuilding and re-solving the network once per line — `n − 1` full
//! solves, each paying topology construction, upload, and a cold
//! iteration count.
//!
//! [`ContingencyScreener`] answers it in **one batched run**: every
//! outage is a [`ScenarioPatch`] over the *shared* base tree (a cut
//! range in DFS space plus one skipped child — a few words per
//! scenario), so the topology uploads once and all contingencies sweep
//! together in the fused per-iteration kernel. With
//! [`SolverConfig::with_warm_start`] the screener first solves the base
//! case, then seeds every contingency from the base voltage profile —
//! post-contingency fixed points sit close to the base one everywhere
//! except under the lost subtree, so warm re-solves converge in a
//! fraction of the cold iteration count.
//!
//! De-energized subtrees are masked out of the sweeps, the residual and
//! the [`ContingencyOutcome::min_v`] headline; buses the outage strands
//! are *reported*, not silently dropped.

use powergrid::{DfsOrder, RadialNetwork};
use simt::{Device, HostProps};
use telemetry::Recorder;

use crate::arrays::SolverArrays;
use crate::config::SolverConfig;
use crate::report::Timing;
use crate::serial::SerialSolver;
use crate::status::SolveStatus;
use crate::tensor_batch::{ScenarioPatch, TensorBatchSolver};

/// Device-memory budget the screener plans chunks against, bytes. The
/// resident per-scenario state is the voltage and current stripes
/// (32 B/bus); the armed-fault audit can transiently triple that, so
/// plan against half the paper rig's 8 GiB.
const CHUNK_MEM_BUDGET: u64 = 4 * 1024 * 1024 * 1024;

/// One screened outage: the branch feeding `bus` opened, everything
/// downstream de-energized.
#[derive(Clone, Copy, Debug)]
pub struct ContingencyOutcome {
    /// Downstream bus of the outaged branch.
    pub bus: usize,
    /// Post-contingency solve outcome.
    pub status: SolveStatus,
    /// Iterations this contingency ran before freezing.
    pub iterations: u32,
    /// Final `max |ΔV|` over the energized buses, volts.
    pub residual: f64,
    /// Minimum energized non-root `|V|`, volts — the voltage-sag
    /// headline. A contingency can converge *and* violate a floor.
    pub min_v: f64,
    /// Buses de-energized by the outage (subtree size).
    pub isolated: u32,
}

impl ContingencyOutcome {
    /// Whether this contingency converged and holds `|V| ≥ floor` on
    /// every energized bus.
    pub fn secure(&self, v_floor: f64) -> bool {
        self.status.is_converged() && self.min_v >= v_floor
    }
}

/// Result of one N-1 screen.
#[derive(Clone, Debug)]
pub struct ScreeningReport {
    /// Base-case (no outage) solve outcome.
    pub base_status: SolveStatus,
    /// Base-case iteration count (the cold-start reference).
    pub base_iterations: u32,
    /// One outcome per screened outage, in the order requested.
    pub outcomes: Vec<ContingencyOutcome>,
    /// Whether contingencies were warm-started from the base profile.
    pub warm: bool,
    /// Batched-solve timing (modeled device time; excludes the serial
    /// base-case solve, which is reported via `base_us`).
    pub timing: Timing,
    /// Modeled time of the serial base-case solve, µs.
    pub base_us: f64,
    /// Modeled throughput of the batched screen, scenarios/s.
    pub scenarios_per_sec: f64,
    /// The headline: screened contingencies per modeled second,
    /// *including* the base-case solve the warm start amortises.
    pub contingencies_per_sec: f64,
}

impl ScreeningReport {
    /// Whether every screened contingency converged.
    pub fn all_converged(&self) -> bool {
        self.outcomes.iter().all(|o| o.status.is_converged())
    }

    /// The converged contingency with the deepest voltage sag, if any.
    pub fn worst_sag(&self) -> Option<&ContingencyOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.status.is_converged())
            .min_by(|x, y| x.min_v.total_cmp(&y.min_v))
    }

    /// Contingencies that fail to converge or sag below `v_floor`.
    pub fn violations(&self, v_floor: f64) -> Vec<&ContingencyOutcome> {
        self.outcomes.iter().filter(|o| !o.secure(v_floor)).collect()
    }
}

/// Screens N-1 line outages in one tensor-batched run.
pub struct ContingencyScreener {
    solver: TensorBatchSolver,
    recorder: Option<Recorder>,
    keep_auto_chunk: bool,
}

impl ContingencyScreener {
    /// Creates a screener on the given device. The underlying tensor
    /// solver runs in stats-only mode — a screen wants statuses,
    /// iteration counts and `min |V|`, not `B·n` voltages — and its
    /// chunk size is planned from the bus count against the device
    /// memory budget.
    pub fn new(device: Device) -> Self {
        ContingencyScreener {
            solver: TensorBatchSolver::new(device).stats_only(),
            recorder: None,
            keep_auto_chunk: true,
        }
    }

    /// Attaches a telemetry recorder: the tensor solver records its
    /// per-chunk/per-iteration spans, and the screener adds screen-level
    /// counters (`screen.contingencies`, per-status counts) and gauges
    /// (`screen.contingencies_per_sec`, `screen.base_iterations`).
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.solver = self.solver.with_recorder(rec.clone());
        self.recorder = Some(rec);
        self
    }

    /// Overrides the automatic chunk planning (testing/tuning).
    pub fn with_chunk_scenarios(mut self, cap: usize) -> Self {
        self.solver = self.solver.with_chunk_scenarios(cap);
        self.keep_auto_chunk = false;
        self
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        self.solver.device()
    }

    /// Screens *every* N-1 single-line outage of the feeder: one
    /// scenario per non-root bus (bus `b` ⇔ opening the branch feeding
    /// `b`). With `cfg.warm_start` the base case is solved once and
    /// every contingency starts from its voltage profile.
    pub fn screen(&mut self, net: &RadialNetwork, cfg: &SolverConfig) -> ScreeningReport {
        let root = net.root();
        let buses: Vec<usize> = (0..net.num_buses()).filter(|&b| b != root).collect();
        self.screen_buses(net, &buses, cfg)
    }

    /// Screens the outages of the branches feeding `buses` only (a
    /// sampled or prioritised subset). Panics on the root or an
    /// out-of-range bus, like the patched solver it drives.
    pub fn screen_buses(
        &mut self,
        net: &RadialNetwork,
        buses: &[usize],
        cfg: &SolverConfig,
    ) -> ScreeningReport {
        assert!(!buses.is_empty(), "screen needs at least one outage");
        let a = SolverArrays::new(net);
        let dfs = DfsOrder::new(net);

        if self.keep_auto_chunk {
            // Resident per-scenario device state is the V and J stripes
            // (two Complex per bus = 32 B/bus): cap the chunk so a
            // chunk's state fits the budget. At 64K buses this lands
            // near 2048 scenarios/chunk.
            let per_scenario = 32 * net.num_buses() as u64;
            let cap = (CHUNK_MEM_BUDGET / per_scenario.max(1)).clamp(16, 8192);
            self.solver.set_chunk_scenarios(cap as usize);
        }

        // Base case first: its iteration count is the cold-start
        // reference, and its profile seeds the warm start.
        let base = SerialSolver::new(HostProps::paper_rig()).solve_arrays(&a, cfg);
        let base_us = base.timing.total_us();
        let warm_profile = (cfg.warm_start && base.status.is_converged()).then_some(&base.v);

        let patches: Vec<ScenarioPatch> =
            buses.iter().map(|&b| ScenarioPatch::outage(b)).collect();
        let res = self
            .solver
            .try_solve_patched_arrays(&a, &dfs, &patches, cfg, warm_profile.map(|v| &v[..]))
            .unwrap_or_else(|e| panic!("{e}"));

        let outcomes = buses
            .iter()
            .enumerate()
            .map(|(s, &bus)| ContingencyOutcome {
                bus,
                status: res.statuses[s],
                iterations: res.per_scenario_iterations[s],
                residual: res.residuals[s],
                min_v: res.min_v[s],
                isolated: dfs.subtree_size[dfs.pos_of[bus] as usize],
            })
            .collect();

        let total_us = res.timing.total_us() + base_us;
        let contingencies_per_sec =
            if total_us > 0.0 { buses.len() as f64 / (total_us * 1e-6) } else { 0.0 };
        if let Some(rec) = &self.recorder {
            rec.counter_add("screen.contingencies", buses.len() as u64);
            rec.gauge_set("screen.contingencies_per_sec", contingencies_per_sec);
            rec.gauge_set("screen.base_iterations", f64::from(base.iterations));
            for status in &res.statuses {
                rec.counter_add(&format!("screen.status.{}", crate::obs::status_key(status)), 1);
            }
        }
        ScreeningReport {
            base_status: base.status,
            base_iterations: base.iterations,
            outcomes,
            warm: warm_profile.is_some(),
            timing: res.timing,
            base_us,
            scenarios_per_sec: res.scenarios_per_sec,
            contingencies_per_sec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powergrid::gen::{random_tree, GenSpec};
    use powergrid::ieee::ieee13;
    use powergrid::TopologyDelta;
    use rng::rngs::StdRng;
    use rng::SeedableRng;
    use simt::DeviceProps;

    fn device() -> Device {
        Device::with_workers(DeviceProps::paper_rig(), 2)
    }

    #[test]
    fn full_screen_covers_every_branch_once() {
        let net = ieee13();
        let cfg = SolverConfig::default();
        let report = ContingencyScreener::new(device()).screen(&net, &cfg);
        assert_eq!(report.outcomes.len(), net.num_branches());
        assert!(report.all_converged(), "a radial feeder survives any single outage");
        assert!(report.base_status.is_converged());
        let mut seen: Vec<usize> = report.outcomes.iter().map(|o| o.bus).collect();
        seen.sort_unstable();
        assert_eq!(seen, (1..net.num_buses()).collect::<Vec<_>>());
        assert!(report.contingencies_per_sec > 0.0);
        // Outaging the branch feeding bus 1 strands everything but the
        // root on this feeder (bus 1 feeds the whole tree).
        let o1 = report.outcomes.iter().find(|o| o.bus == 1).unwrap();
        assert_eq!(o1.isolated as usize, net.num_buses() - 1);
        assert!(o1.min_v.is_infinite(), "nothing energized to measure");
    }

    #[test]
    fn screen_matches_per_outage_delta_resolves() {
        let mut rng = StdRng::seed_from_u64(97);
        let net = random_tree(120, 6, &GenSpec::default(), &mut rng);
        let cfg = SolverConfig::default();
        let report = ContingencyScreener::new(device()).screen(&net, &cfg);
        let serial = SerialSolver::new(HostProps::paper_rig());
        // Spot-check against the classical loop: apply the delta,
        // re-solve, revert.
        let mut work = net.clone();
        for &bus in &[3usize, 40, 77, 119] {
            let mut d = TopologyDelta::outage(&work, bus).unwrap();
            d.apply(&mut work).unwrap();
            let sref = serial.solve(&work, &cfg);
            d.revert(&mut work).unwrap();
            let o = report.outcomes.iter().find(|o| o.bus == bus).unwrap();
            assert_eq!(o.status, sref.status, "bus {bus}");
            assert_eq!(o.iterations, sref.iterations, "bus {bus}");
            assert_eq!(o.isolated as usize, d.isolated().len(), "bus {bus}");
        }
    }

    #[test]
    fn warm_screen_converges_and_beats_cold_iterations() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = random_tree(250, 7, &GenSpec::default(), &mut rng);
        let cold_cfg = SolverConfig::default();
        let warm_cfg = SolverConfig::default().with_warm_start();
        let cold = ContingencyScreener::new(device()).screen(&net, &cold_cfg);
        let warm = ContingencyScreener::new(device()).screen(&net, &warm_cfg);
        assert!(!cold.warm && warm.warm);
        assert!(cold.all_converged() && warm.all_converged());
        let mut strictly_fewer = 0usize;
        for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
            assert_eq!(c.bus, w.bus);
            assert!(
                w.iterations <= c.iterations,
                "bus {}: warm {} > cold {}",
                c.bus,
                w.iterations,
                c.iterations
            );
            if w.iterations < c.iterations {
                strictly_fewer += 1;
            }
        }
        // On a feeder this small, outages that strand most of the tree
        // leave so few energized buses that cold already converges in a
        // handful of iterations and warm can only tie. The ≥90% strict
        // win is the E14 acceptance criterion on large feeders; here we
        // require a clear majority plus a median win.
        assert!(
            strictly_fewer * 4 >= cold.outcomes.len() * 3,
            "warm start should win strictly on ≥75% of contingencies, won {}/{}",
            strictly_fewer,
            cold.outcomes.len()
        );
        let median = |r: &ScreeningReport| {
            let mut it: Vec<u32> = r.outcomes.iter().map(|o| o.iterations).collect();
            it.sort_unstable();
            it[it.len() / 2]
        };
        assert!(median(&warm) < median(&cold));
    }

    #[test]
    fn violations_and_worst_sag_read_the_min_v_headline() {
        let net = ieee13();
        let cfg = SolverConfig::default();
        let report = ContingencyScreener::new(device()).screen(&net, &cfg);
        let sag = report.worst_sag().expect("converged outcomes exist");
        assert!(sag.min_v > 0.0);
        // Every finite min_v is at most the source magnitude.
        for o in &report.outcomes {
            if o.min_v.is_finite() {
                assert!(o.min_v <= net.source_voltage().abs());
            }
        }
        // A floor above the best min_v flags everything; zero flags
        // nothing (all converged).
        assert!(report.violations(f64::INFINITY).len() >= report.outcomes.len() - 1);
        assert!(report.violations(0.0).is_empty());
    }

    #[test]
    fn recorder_collects_screen_level_counters() {
        let net = ieee13();
        let cfg = SolverConfig::default();
        let rec = Recorder::new();
        let report =
            ContingencyScreener::new(device()).with_recorder(rec.clone()).screen(&net, &cfg);
        let (_, reg) = rec.snapshot();
        let counters: std::collections::BTreeMap<&str, u64> = reg.counters().collect();
        assert_eq!(counters["screen.contingencies"], report.outcomes.len() as u64);
        assert_eq!(counters["screen.status.converged"], report.outcomes.len() as u64);
        let gauges: std::collections::BTreeMap<&str, f64> = reg.gauges().collect();
        assert_eq!(gauges["screen.contingencies_per_sec"], report.contingencies_per_sec);
        assert_eq!(gauges["screen.base_iterations"], f64::from(report.base_iterations));
    }

    #[test]
    fn sampled_screen_respects_the_requested_buses() {
        let net = ieee13();
        let cfg = SolverConfig::default();
        let buses = [6usize, 9, 12];
        let report =
            ContingencyScreener::new(device()).screen_buses(&net, &buses, &cfg);
        assert_eq!(report.outcomes.len(), 3);
        assert_eq!(
            report.outcomes.iter().map(|o| o.bus).collect::<Vec<_>>(),
            buses.to_vec()
        );
    }
}
