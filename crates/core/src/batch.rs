//! Batched power flow: many load scenarios on one topology.
//!
//! The operational workload of distribution analysis is not one solve
//! but thousands — time-series load flow (8760 hourly scenarios), Monte
//! Carlo hosting-capacity studies, contingency sweeps. The topology is
//! fixed; only the loads change.
//!
//! [`BatchSolver`] is the stable entry point for that workload. It used
//! to carry its own level-batched engine (scenario-major within each
//! level, one segmented scan per level per iteration); that engine has
//! been retired in favour of the tensor-batched one — scenario-major
//! slabs, a single fused kernel per iteration, per-scenario convergence
//! freezing and chunked execution — which strictly dominates it on the
//! modeled device. `BatchSolver` is now a thin shim over
//! [`TensorBatchSolver`] that preserves the original API and result
//! shape:
//!
//! * topology arrays upload **once** per chunk,
//! * each iteration is **one** fused kernel covering every scenario —
//!   the small-tree launch-bound regime of E1/E3 disappears entirely,
//! * convergence is tracked **per scenario**: a scenario that diverges
//!   or goes non-finite is frozen at the detecting iteration while the
//!   healthy scenarios keep converging.
//!
//! New code should use [`TensorBatchSolver`] directly — it exposes
//! per-scenario iteration counts, stats-only streaming, fault-armed
//! execution and topology patches ([`crate::contingency`]) that this
//! compatibility surface does not.

use numc::Complex;
use powergrid::RadialNetwork;
use simt::{Device, DeviceError};
use telemetry::Recorder;

use crate::arrays::SolverArrays;
use crate::config::SolverConfig;
use crate::report::Timing;
use crate::status::SolveStatus;
use crate::tensor_batch::{TensorBatchResult, TensorBatchSolver};

/// Result of one batched solve.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Per-scenario bus voltages, indexed `[scenario][bus id]`.
    pub v: Vec<Vec<Complex>>,
    /// Per-scenario branch currents into each bus, `[scenario][bus id]`.
    pub j: Vec<Vec<Complex>>,
    /// Iterations the batch loop executed (the slowest scenario's
    /// count).
    pub iterations: u32,
    /// Per-scenario loop outcome. A scenario that diverges or goes
    /// non-finite is frozen the moment it is detected, so the healthy
    /// scenarios keep converging instead of burning `max_iter`
    /// alongside it; its voltages are frozen at the detecting
    /// iteration, which the status carries as `at_iteration`.
    pub statuses: Vec<SolveStatus>,
    /// Batch-wide worst final `max |ΔV|`, volts.
    pub residual: f64,
    /// Timing summary for the whole batch.
    pub timing: Timing,
    /// Recovery/integrity bookkeeping — `Some` when faults were
    /// observed or a fault plan was armed (see
    /// [`crate::FaultReport::corruptions_detected`]).
    pub fault_report: Option<crate::FaultReport>,
}

impl BatchResult {
    /// Whether *every* scenario converged within the cap.
    pub fn converged(&self) -> bool {
        self.statuses.iter().all(|s| s.is_converged())
    }

    /// The most severe scenario outcome (batch-wide summary).
    pub fn worst_status(&self) -> SolveStatus {
        self.statuses.iter().fold(SolveStatus::Converged, |w, &s| w.worse(s))
    }
}

impl From<TensorBatchResult> for BatchResult {
    fn from(r: TensorBatchResult) -> Self {
        BatchResult {
            v: r.v,
            j: r.j,
            iterations: r.iterations,
            statuses: r.statuses,
            residual: r.residual,
            timing: r.timing,
            fault_report: r.fault_report,
        }
    }
}

/// The batched GPU solver — a compatibility shim over
/// [`TensorBatchSolver`].
pub struct BatchSolver {
    inner: TensorBatchSolver,
}

impl BatchSolver {
    /// Creates a solver on the given device.
    pub fn new(device: Device) -> Self {
        BatchSolver { inner: TensorBatchSolver::new(device) }
    }

    /// Attaches a telemetry recorder: per-chunk/per-iteration spans and
    /// residual samples are recorded into it during every solve.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.inner = self.inner.with_recorder(rec);
        self
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        self.inner.device()
    }

    /// Solves `scenarios.len()` load scenarios over one network.
    ///
    /// Each scenario is a full by-bus load vector (`scenarios[s][bus]`,
    /// VA). Panics if any scenario's length differs from the bus count
    /// or the batch is empty.
    pub fn solve(
        &mut self,
        net: &RadialNetwork,
        scenarios: &[Vec<Complex>],
        cfg: &SolverConfig,
    ) -> BatchResult {
        self.inner.solve(net, scenarios, cfg).into()
    }

    /// Solves with pre-built level-order arrays.
    pub fn solve_arrays(
        &mut self,
        a: &SolverArrays,
        scenarios: &[Vec<Complex>],
        cfg: &SolverConfig,
    ) -> BatchResult {
        self.inner.solve_arrays(a, scenarios, cfg).into()
    }

    /// Fallible [`BatchSolver::solve`]: surfaces injected faults and
    /// device loss as [`DeviceError`] instead of panicking. Batch-shape
    /// violations (empty batch, wrong-length scenario) remain panics —
    /// they are caller bugs, not device weather.
    pub fn try_solve(
        &mut self,
        net: &RadialNetwork,
        scenarios: &[Vec<Complex>],
        cfg: &SolverConfig,
    ) -> Result<BatchResult, DeviceError> {
        self.inner.try_solve(net, scenarios, cfg).map(Into::into)
    }

    /// Fallible [`BatchSolver::solve_arrays`].
    pub fn try_solve_arrays(
        &mut self,
        a: &SolverArrays,
        scenarios: &[Vec<Complex>],
        cfg: &SolverConfig,
    ) -> Result<BatchResult, DeviceError> {
        self.inner.try_solve_arrays(a, scenarios, cfg).map(Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::SolveResult;
    use crate::serial::SerialSolver;
    use crate::SolverConfig;
    use powergrid::gen::{balanced_binary, GenSpec};
    use powergrid::ieee::ieee13;
    use rng::rngs::StdRng;
    use rng::SeedableRng;
    use simt::{DeviceProps, HostProps};

    fn batch() -> BatchSolver {
        BatchSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2))
    }

    fn loads_scaled(net: &RadialNetwork, scale: f64) -> Vec<Complex> {
        net.buses().iter().map(|b| b.load * scale).collect()
    }

    fn serial_at(net: &RadialNetwork, scale: f64, cfg: &SolverConfig) -> SolveResult {
        let mut scaled = net.clone();
        scaled.scale_loads(scale);
        SerialSolver::new(HostProps::paper_rig()).solve(&scaled, cfg)
    }

    #[test]
    fn batch_of_one_matches_single_solve() {
        let net = ieee13();
        let cfg = SolverConfig::default();
        let res = batch().solve(&net, &[loads_scaled(&net, 1.0)], &cfg);
        assert!(res.converged());
        let single = serial_at(&net, 1.0, &cfg);
        for bus in 0..net.num_buses() {
            assert!((res.v[0][bus] - single.v[bus]).abs() < 1e-5);
        }
    }

    #[test]
    fn scenarios_solve_independently() {
        let net = ieee13();
        let cfg = SolverConfig::default();
        let scales = [0.4, 0.8, 1.0, 1.3];
        let scenarios: Vec<Vec<Complex>> =
            scales.iter().map(|&sc| loads_scaled(&net, sc)).collect();
        let res = batch().solve(&net, &scenarios, &cfg);
        assert!(res.converged());
        let v0 = net.source_voltage().abs();
        for (s, &scale) in scales.iter().enumerate() {
            let single = serial_at(&net, scale, &cfg);
            for bus in 0..net.num_buses() {
                assert!(
                    (res.v[s][bus] - single.v[bus]).abs() < 1e-4 * v0,
                    "scenario {s} bus {bus}: {:?} vs {:?}",
                    res.v[s][bus],
                    single.v[bus]
                );
            }
        }
        // Heavier loading sags more.
        let sag = |s: usize| res.v[s].iter().map(|v| v.abs()).fold(f64::INFINITY, f64::min);
        assert!(sag(0) > sag(3));
    }

    #[test]
    fn shim_result_is_bitwise_the_tensor_result() {
        let net = ieee13();
        let cfg = SolverConfig::default();
        let scenarios: Vec<Vec<Complex>> =
            [0.5, 1.0, 1.25].iter().map(|&sc| loads_scaled(&net, sc)).collect();
        let shim = batch().solve(&net, &scenarios, &cfg);
        let tensor = TensorBatchSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2))
            .solve(&net, &scenarios, &cfg);
        assert_eq!(shim.statuses, tensor.statuses);
        assert_eq!(shim.iterations, tensor.iterations);
        assert_eq!(shim.residual.to_bits(), tensor.residual.to_bits());
        assert_eq!(shim.v, tensor.v);
        assert_eq!(shim.j, tensor.j);
    }

    #[test]
    fn batching_amortises_launches_on_generated_trees() {
        let mut rng = StdRng::seed_from_u64(77);
        let net = balanced_binary(1023, &GenSpec::default(), &mut rng);
        let cfg = SolverConfig::default();

        // 16 scenarios in one batch…
        let scenarios: Vec<Vec<Complex>> =
            (0..16).map(|k| loads_scaled(&net, 0.5 + 0.05 * k as f64)).collect();
        let mut b16 = batch();
        let r16 = b16.solve(&net, &scenarios, &cfg);
        assert!(r16.converged());

        // …versus one scenario costed 16 times.
        let mut b1 = batch();
        let r1 = b1.solve(&net, &scenarios[..1], &cfg);
        let per_scenario_batched = r16.timing.total_us() / 16.0;
        let per_scenario_single = r1.timing.total_us();
        assert!(
            per_scenario_batched < 0.4 * per_scenario_single,
            "batching must amortise fixed costs: {per_scenario_batched:.1} vs {per_scenario_single:.1} µs/scenario"
        );
    }

    #[test]
    fn masked_scenario_reports_its_freeze_iteration_not_max_iter() {
        let net = ieee13();
        let cfg = SolverConfig::default();
        // Three healthy scenarios around one poisoned with a NaN load at
        // a non-root bus (the root injection is guarded): the per-scenario
        // monitor trips within the first iterations and freezes it.
        let mut scenarios: Vec<Vec<Complex>> =
            [0.6, 1.0, 1.2].iter().map(|&sc| loads_scaled(&net, sc)).collect();
        let mut bad = loads_scaled(&net, 1.0);
        bad[5] = Complex::new(f64::NAN, f64::NAN);
        scenarios.insert(1, bad);

        let res = batch().solve(&net, &scenarios, &cfg);
        let at = match res.statuses[1] {
            SolveStatus::NumericalFailure { at_iteration }
            | SolveStatus::Diverged { at_iteration } => at_iteration,
            other => panic!("poisoned scenario must be masked, got {other:?}"),
        };
        // The freeze iteration is when the mask landed, not the cap and
        // not the batch's final iteration count.
        assert!(at >= 1, "freeze iteration must be recorded");
        assert!(
            at < cfg.max_iter,
            "frozen scenario must not report the iteration cap ({at} vs {})",
            cfg.max_iter
        );
        assert!(
            at <= res.iterations,
            "freeze at iteration {at} cannot postdate the batch's {} iterations",
            res.iterations
        );
        // The survivors still converge to the serial answer.
        let v0 = net.source_voltage().abs();
        for &(s, scale) in [(0usize, 0.6), (2, 1.0), (3, 1.2)].iter() {
            assert_eq!(res.statuses[s], SolveStatus::Converged, "scenario {s}");
            let single = serial_at(&net, scale, &cfg);
            for bus in 0..net.num_buses() {
                assert!(
                    (res.v[s][bus] - single.v[bus]).abs() < 1e-4 * v0,
                    "scenario {s} bus {bus} drifted after masking"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one scenario")]
    fn empty_batch_rejected() {
        let net = ieee13();
        batch().solve(&net, &[], &SolverConfig::default());
    }

    #[test]
    #[should_panic(expected = "scenario 1 has")]
    fn wrong_length_scenario_rejected() {
        let net = ieee13();
        let good = loads_scaled(&net, 1.0);
        let bad = vec![Complex::ZERO; 5];
        batch().solve(&net, &[good, bad], &SolverConfig::default());
    }
}
