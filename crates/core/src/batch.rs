//! Batched power flow: many load scenarios on one topology.
//!
//! The operational workload of distribution analysis is not one solve
//! but thousands — time-series load flow (8760 hourly scenarios), Monte
//! Carlo hosting-capacity studies, contingency sweeps. The topology is
//! fixed; only the loads change. This module batches `B` scenarios into
//! one device state so that
//!
//! * topology arrays upload **once**,
//! * every per-level kernel covers the level of **all B scenarios at
//!   once** (level width × B threads), amortising launch overhead — the
//!   small-tree launch-bound regime of E1/E3 disappears for `B` large
//!   enough,
//! * one convergence reduction covers the whole batch (iterate until
//!   every scenario meets the tolerance).
//!
//! # Batched layout
//!
//! Scenario-major *within each level*: level `l` (width `w`) occupies the
//! global range `[B·off_l, B·off_l + B·w)`, scenario `s` at
//! `[B·off_l + s·w, …+w)`. Children of one parent stay contiguous and
//! never straddle a scenario boundary, so the same head-flag segmented
//! scan drives the backward sweep unchanged.

use std::time::Instant;

use numc::Complex;
use powergrid::RadialNetwork;
use primitives::ops::{AddComplex, MaxAbsF64, ScanOp};
use primitives::{try_fill, try_launch_map, try_reduce, try_segscan_inclusive_range};
use simt::{Device, DeviceError};

use telemetry::Recorder;

use crate::arrays::SolverArrays;
use crate::config::SolverConfig;
use crate::obs::Obs;
use crate::report::{PhaseTimes, Timing};
use crate::status::{ConvergenceMonitor, SolveStatus};

/// Result of one batched solve.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Per-scenario bus voltages, indexed `[scenario][bus id]`.
    pub v: Vec<Vec<Complex>>,
    /// Per-scenario branch currents into each bus, `[scenario][bus id]`.
    pub j: Vec<Vec<Complex>>,
    /// Iterations the batch loop executed.
    pub iterations: u32,
    /// Per-scenario loop outcome. A scenario that diverges or goes
    /// non-finite is *masked out* of the batch-wide reduction the moment
    /// it is detected, so the healthy scenarios keep converging instead
    /// of burning `max_iter` alongside it; its voltages are frozen at
    /// the detecting iteration.
    pub statuses: Vec<SolveStatus>,
    /// Final `max |ΔV|` over the scenarios still active, volts.
    pub residual: f64,
    /// Timing summary for the whole batch.
    pub timing: Timing,
}

impl BatchResult {
    /// Whether *every* scenario converged within the cap.
    pub fn converged(&self) -> bool {
        self.statuses.iter().all(|s| s.is_converged())
    }

    /// The most severe scenario outcome (batch-wide summary).
    pub fn worst_status(&self) -> SolveStatus {
        self.statuses.iter().fold(SolveStatus::Converged, |w, &s| w.worse(s))
    }
}

/// The batched GPU solver.
pub struct BatchSolver {
    device: Device,
    recorder: Option<Recorder>,
}

impl BatchSolver {
    /// Creates a solver on the given device.
    pub fn new(device: Device) -> Self {
        BatchSolver { device, recorder: None }
    }

    /// Attaches a telemetry recorder: per-iteration/per-phase spans and
    /// residual samples are recorded into it during every solve.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Solves `scenarios.len()` load scenarios over one network.
    ///
    /// Each scenario is a full by-bus load vector (`scenarios[s][bus]`,
    /// VA). Panics if any scenario's length differs from the bus count
    /// or the batch is empty.
    pub fn solve(
        &mut self,
        net: &RadialNetwork,
        scenarios: &[Vec<Complex>],
        cfg: &SolverConfig,
    ) -> BatchResult {
        let arrays = SolverArrays::new(net);
        self.solve_arrays(&arrays, scenarios, cfg)
    }

    /// Solves with pre-built level-order arrays.
    pub fn solve_arrays(
        &mut self,
        a: &SolverArrays,
        scenarios: &[Vec<Complex>],
        cfg: &SolverConfig,
    ) -> BatchResult {
        self.try_solve_arrays(a, scenarios, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`BatchSolver::solve`]: surfaces injected faults and
    /// device loss as [`DeviceError`] instead of panicking. Batch-shape
    /// violations (empty batch, wrong-length scenario) remain panics —
    /// they are caller bugs, not device weather.
    pub fn try_solve(
        &mut self,
        net: &RadialNetwork,
        scenarios: &[Vec<Complex>],
        cfg: &SolverConfig,
    ) -> Result<BatchResult, DeviceError> {
        let arrays = SolverArrays::new(net);
        self.try_solve_arrays(&arrays, scenarios, cfg)
    }

    /// Fallible [`BatchSolver::solve_arrays`].
    pub fn try_solve_arrays(
        &mut self,
        a: &SolverArrays,
        scenarios: &[Vec<Complex>],
        cfg: &SolverConfig,
    ) -> Result<BatchResult, DeviceError> {
        let wall0 = Instant::now();
        let nb = scenarios.len();
        assert!(nb >= 1, "batch must contain at least one scenario");
        let n = a.len();
        for (s, sc) in scenarios.iter().enumerate() {
            assert_eq!(sc.len(), n, "scenario {s} has {} loads for {n} buses", sc.len());
        }
        let num_levels = a.num_levels();
        let v0 = a.source;
        if cfg.validate().is_err() {
            return Ok(BatchResult {
                v: vec![vec![v0; n]; nb],
                j: vec![vec![Complex::ZERO; n]; nb],
                iterations: 0,
                statuses: vec![SolveStatus::InvalidConfig; nb],
                residual: f64::INFINITY,
                timing: Timing::default(),
            });
        }
        let mut monitor = ConvergenceMonitor::new(cfg, v0.abs());
        let (tol, cap) = (monitor.tol(), monitor.cap());
        let total = n * nb;

        // ---- Build the batched host arrays (scenario-major per level).
        // bpos(l, s, k) = B·off_l + s·w_l + k for the k-th position of
        // level l.
        let level_off = |l: usize| a.levels.level_offsets[l] as usize;
        let width = |l: usize| level_off(l + 1) - level_off(l);
        let bpos = |l: usize, s: usize, k: usize| nb * level_off(l) + s * width(l) + k;

        let mut s_host = vec![Complex::ZERO; total];
        let mut z_host = vec![Complex::ZERO; total];
        let mut parent_host = vec![0u32; total];
        let mut flags_host = vec![0u32; total];
        let mut seg_last_host = vec![0u32; total];
        let mut child_lo_host = vec![0u32; total];
        let mut child_hi_host = vec![0u32; total];
        for l in 0..num_levels {
            let off = level_off(l);
            let w = width(l);
            for (s, scenario) in scenarios.iter().enumerate() {
                for k in 0..w {
                    let p = off + k; // unbatched position
                    let g = bpos(l, s, k);
                    let bus = a.levels.order[p] as usize;
                    s_host[g] = scenario[bus];
                    z_host[g] = a.z[p];
                    flags_host[g] = a.head_flags[p];
                    if l > 0 {
                        let pp = a.parent_pos[p] as usize; // in level l−1
                        parent_host[g] = bpos(l - 1, s, pp - level_off(l - 1)) as u32;
                    } else {
                        parent_host[g] = g as u32;
                    }
                    let (clo, chi) = (a.child_lo[p] as usize, a.child_hi[p] as usize);
                    if clo < chi {
                        let c_off = level_off(l + 1);
                        child_lo_host[g] = bpos(l + 1, s, clo - c_off) as u32;
                        child_hi_host[g] = bpos(l + 1, s, chi - c_off) as u32;
                        seg_last_host[g] = bpos(l + 1, s, chi - 1 - c_off) as u32;
                    }
                }
            }
        }

        let dev = &mut self.device;
        let mut phases = PhaseTimes::default();
        let mut transfer_us = 0.0;
        let mut transfer_sweep_us = 0.0;

        // ---- Setup ----
        let mark = dev.timeline().mark();
        let s_buf = dev.try_alloc_from(&s_host)?;
        let z_buf = dev.try_alloc_from(&z_host)?;
        let parent_buf = dev.try_alloc_from(&parent_host)?;
        let flags_buf = dev.try_alloc_from(&flags_host)?;
        let seg_last_buf = dev.try_alloc_from(&seg_last_host)?;
        let child_lo_buf = dev.try_alloc_from(&child_lo_host)?;
        let child_hi_buf = dev.try_alloc_from(&child_hi_host)?;
        let mut v_buf = dev.try_alloc::<Complex>(total)?;
        try_fill(dev, &mut v_buf, v0)?;
        let mut i_buf = dev.try_alloc::<Complex>(total)?;
        let mut j_buf = dev.try_alloc::<Complex>(total)?;
        let mut delta_buf = dev.try_alloc::<f64>(total)?;
        try_fill(dev, &mut delta_buf, 0.0)?;
        let mut scan_buf = dev.try_alloc::<Complex>(total)?;
        // Per-element activity mask (1 = scenario still iterating). A
        // masked scenario's forward kernel freezes its state and reports
        // a zero delta, removing it from the batch-wide reduction.
        let mut mask_host = vec![1u32; total];
        let mut mask_buf = dev.try_alloc_from(&mask_host)?;
        let b = dev.timeline().breakdown_since(mark);
        phases.setup_us += b.total_us();
        transfer_us += b.htod_us + b.dtoh_us;
        let obs = Obs::new(self.recorder.as_ref(), "solver.batch");
        obs.phase("setup", 0.0, phases.setup_us);

        let mut iterations = 0;
        let mut residual = f64::MAX;
        let mut statuses = vec![SolveStatus::MaxIterations; nb];
        let mut active = vec![true; nb];

        while iterations < cfg.max_iter {
            iterations += 1;
            let iter_t0 = phases.total_us();

            // ---- Injection over the whole batch ----
            let mark = dev.timeline().mark();
            {
                let s_v = s_buf.view();
                let v_v = v_buf.view();
                let i_v = i_buf.view_mut();
                try_launch_map(dev, total, "batch_inject", move |t, g| {
                    let s = t.ld(&s_v, g);
                    let out = if s == Complex::ZERO {
                        Complex::ZERO
                    } else {
                        let v = t.ld(&v_v, g);
                        t.flops(Complex::DIV_FLOPS + 1);
                        (s / v).conj()
                    };
                    t.st(&i_v, g, out);
                })?;
            }
            phases.injection_us += dev.timeline().breakdown_since(mark).total_us();
            obs.phase("injection", iter_t0, phases.total_us());
            let bwd_t0 = phases.total_us();

            // ---- Backward sweep: each level covers all scenarios ----
            let mark = dev.timeline().mark();
            for l in (0..num_levels).rev() {
                let lo = nb * level_off(l);
                let len = nb * width(l);
                if l + 1 < num_levels {
                    let clo = nb * level_off(l + 1);
                    let chi = clo + nb * width(l + 1);
                    try_segscan_inclusive_range::<Complex, AddComplex>(
                        dev, &j_buf, &flags_buf, clo, chi, &mut scan_buf,
                    )?;
                }
                let i_v = i_buf.view();
                let lo_v = child_lo_buf.view();
                let hi_v = child_hi_buf.view();
                let last_v = seg_last_buf.view();
                let scan_v = scan_buf.view();
                let j_v = j_buf.view_mut();
                try_launch_map(dev, len, "batch_backward_combine", move |t, k| {
                    let g = lo + k;
                    let mut acc = t.ld(&i_v, g);
                    if t.ld(&lo_v, g) < t.ld(&hi_v, g) {
                        let tail = t.ld(&last_v, g) as usize;
                        t.flops(Complex::ADD_FLOPS);
                        acc += t.ld(&scan_v, tail);
                    }
                    t.st(&j_v, g, acc);
                })?;
            }
            phases.backward_us += dev.timeline().breakdown_since(mark).total_us();
            obs.phase("backward", bwd_t0, phases.total_us());
            let fwd_t0 = phases.total_us();

            // ---- Forward sweep ----
            let mark = dev.timeline().mark();
            for l in 1..num_levels {
                let lo = nb * level_off(l);
                let len = nb * width(l);
                let z_v = z_buf.view();
                let par_v = parent_buf.view();
                let j_v = j_buf.view();
                let mask_v = mask_buf.view();
                let d_v = delta_buf.view_mut();
                let v_v = v_buf.view_mut();
                try_launch_map(dev, len, "batch_forward", move |t, k| {
                    let g = lo + k;
                    // Masked scenarios freeze: no voltage update and a
                    // zero delta. The branch (not a multiply) matters —
                    // `NaN · 0 = NaN` would put the corpse right back
                    // into the reduction.
                    if t.ld(&mask_v, g) == 0 {
                        t.st(&d_v, g, 0.0);
                        return;
                    }
                    let parent = t.ld(&par_v, g) as usize;
                    let vp = t.ld_mut(&v_v, parent);
                    let z = t.ld(&z_v, g);
                    let jb = t.ld(&j_v, g);
                    let old = t.ld_mut(&v_v, g);
                    let new_v = vp - z * jb;
                    t.flops(Complex::MUL_FLOPS + Complex::ADD_FLOPS + 4);
                    t.st(&v_v, g, new_v);
                    t.st(&d_v, g, (new_v - old).abs());
                })?;
            }
            phases.forward_us += dev.timeline().breakdown_since(mark).total_us();
            obs.phase("forward", fwd_t0, phases.total_us());
            let cvg_t0 = phases.total_us();

            // ---- Convergence: batch-wide ∞-norm ----
            // Healthy path: one reduction, one scalar read-back, exactly
            // as before. Only when the monitor flags trouble does the
            // solver pay for a per-scenario triage (delta download + host
            // folds) to find and mask the offenders.
            let mark = dev.timeline().mark();
            let delta = try_reduce::<f64, MaxAbsF64>(dev, &delta_buf)?;
            let mut stop = false;
            match monitor.observe(iterations, delta) {
                None => residual = delta,
                Some(SolveStatus::Converged) => {
                    residual = delta;
                    for (s, st) in statuses.iter_mut().enumerate() {
                        if active[s] {
                            *st = SolveStatus::Converged;
                        }
                    }
                    stop = true;
                }
                Some(_) => {
                    // Triage: fold each active scenario's ∞-norm on the
                    // host and classify.
                    let delta_host = dev.try_dtoh(&delta_buf)?;
                    let mut per = vec![0.0f64; nb];
                    for (s, r) in per.iter_mut().enumerate() {
                        if !active[s] {
                            continue;
                        }
                        for l in 0..num_levels {
                            let base = bpos(l, s, 0);
                            for &d in &delta_host[base..base + width(l)] {
                                *r = MaxAbsF64::combine(*r, d);
                            }
                        }
                    }
                    let mut masked = Vec::new();
                    for s in 0..nb {
                        if !active[s] {
                            continue;
                        }
                        if !per[s].is_finite() {
                            statuses[s] = SolveStatus::NumericalFailure { at_iteration: iterations };
                            masked.push(s);
                        } else if per[s] > cap {
                            statuses[s] = SolveStatus::Diverged { at_iteration: iterations };
                            masked.push(s);
                        }
                    }
                    if masked.is_empty() {
                        // Growth-patience trigger with every scenario
                        // under the cap: the batch maximum is what has
                        // been growing — retire the worst offender.
                        if let Some(worst) = (0..nb)
                            .filter(|&s| active[s])
                            .max_by(|&x, &y| per[x].total_cmp(&per[y]))
                        {
                            statuses[worst] = SolveStatus::Diverged { at_iteration: iterations };
                            masked.push(worst);
                        }
                    }
                    for &s in &masked {
                        active[s] = false;
                        for l in 0..num_levels {
                            let base = bpos(l, s, 0);
                            for slot in &mut mask_host[base..base + width(l)] {
                                *slot = 0;
                            }
                        }
                    }
                    dev.try_htod(&mut mask_buf, &mask_host)?;
                    // The residual landscape changed; restart growth
                    // tracking for the survivors.
                    monitor = ConvergenceMonitor::new(cfg, v0.abs());
                    residual = (0..nb)
                        .filter(|&s| active[s])
                        .map(|s| per[s])
                        .fold(0.0, MaxAbsF64::combine);
                    if !active.iter().any(|&x| x) {
                        stop = true;
                    } else if residual <= tol {
                        for (s, st) in statuses.iter_mut().enumerate() {
                            if active[s] {
                                *st = SolveStatus::Converged;
                            }
                        }
                        stop = true;
                    }
                }
            }
            let b = dev.timeline().breakdown_since(mark);
            phases.convergence_us += b.total_us();
            obs.phase("convergence", cvg_t0, phases.total_us());
            obs.iteration(iterations, iter_t0, phases.total_us(), residual);
            transfer_us += b.htod_us + b.dtoh_us;
            transfer_sweep_us += b.htod_us + b.dtoh_us;
            let deadline_hit =
                !stop && cfg.deadline_us.is_some_and(|budget| phases.total_us() >= budget);
            if deadline_hit {
                // The batch ran out of modeled time: every scenario
                // still iterating is cut off with its partial state;
                // already-settled statuses stand.
                let elapsed = phases.total_us();
                for (s, st) in statuses.iter_mut().enumerate() {
                    if active[s] && *st == SolveStatus::MaxIterations {
                        *st = SolveStatus::DeadlineExceeded {
                            at_iteration: iterations,
                            elapsed_us: elapsed as u64,
                        };
                    }
                }
                stop = true;
            }
            if stop {
                break;
            }
        }

        // Iteration-cap exit: the batch as a whole missed the tolerance,
        // but individual scenarios may have met it — classify each from
        // the final deltas instead of smearing MaxIterations over all.
        if statuses.contains(&SolveStatus::MaxIterations) {
            let mark = dev.timeline().mark();
            let delta_host = dev.try_dtoh(&delta_buf)?;
            let b = dev.timeline().breakdown_since(mark);
            phases.convergence_us += b.total_us();
            transfer_us += b.htod_us + b.dtoh_us;
            for (s, status) in statuses.iter_mut().enumerate() {
                if *status != SolveStatus::MaxIterations {
                    continue;
                }
                let mut r = 0.0f64;
                for l in 0..num_levels {
                    let base = bpos(l, s, 0);
                    for &d in &delta_host[base..base + width(l)] {
                        r = MaxAbsF64::combine(r, d);
                    }
                }
                if r <= tol {
                    *status = SolveStatus::Converged;
                }
            }
        }

        // ---- Teardown: download and unbatch ----
        let mark = dev.timeline().mark();
        let v_flat = dev.try_dtoh(&v_buf)?;
        let j_flat = dev.try_dtoh(&j_buf)?;
        let b = dev.timeline().breakdown_since(mark);
        let td_t0 = phases.total_us();
        phases.teardown_us += b.total_us();
        obs.phase("teardown", td_t0, phases.total_us());
        transfer_us += b.htod_us + b.dtoh_us;

        let mut v = vec![vec![Complex::ZERO; n]; nb];
        let mut j = vec![vec![Complex::ZERO; n]; nb];
        for l in 0..num_levels {
            let off = level_off(l);
            let w = width(l);
            for s in 0..nb {
                for k in 0..w {
                    let bus = a.levels.order[off + k] as usize;
                    let g = bpos(l, s, k);
                    v[s][bus] = v_flat[g];
                    j[s][bus] = j_flat[g];
                }
            }
        }

        let timing = Timing {
            phases,
            transfer_us,
            transfer_sweep_us,
            wall_us: wall0.elapsed().as_secs_f64() * 1e6,
        };
        Ok(BatchResult { v, j, iterations, statuses, residual, timing })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::SolveResult;
    use crate::serial::SerialSolver;
    use crate::SolverConfig;
    use powergrid::gen::{balanced_binary, GenSpec};
    use powergrid::ieee::ieee13;
    use rng::rngs::StdRng;
    use rng::SeedableRng;
    use simt::{DeviceProps, HostProps};

    fn batch() -> BatchSolver {
        BatchSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2))
    }

    fn loads_scaled(net: &RadialNetwork, scale: f64) -> Vec<Complex> {
        net.buses().iter().map(|b| b.load * scale).collect()
    }

    fn serial_at(net: &RadialNetwork, scale: f64, cfg: &SolverConfig) -> SolveResult {
        let mut scaled = net.clone();
        scaled.scale_loads(scale);
        SerialSolver::new(HostProps::paper_rig()).solve(&scaled, cfg)
    }

    #[test]
    fn batch_of_one_matches_single_solve() {
        let net = ieee13();
        let cfg = SolverConfig::default();
        let res = batch().solve(&net, &[loads_scaled(&net, 1.0)], &cfg);
        assert!(res.converged());
        let single = serial_at(&net, 1.0, &cfg);
        for bus in 0..net.num_buses() {
            assert!((res.v[0][bus] - single.v[bus]).abs() < 1e-5);
        }
    }

    #[test]
    fn scenarios_solve_independently() {
        let net = ieee13();
        let cfg = SolverConfig::default();
        let scales = [0.4, 0.8, 1.0, 1.3];
        let scenarios: Vec<Vec<Complex>> =
            scales.iter().map(|&sc| loads_scaled(&net, sc)).collect();
        let res = batch().solve(&net, &scenarios, &cfg);
        assert!(res.converged());
        let v0 = net.source_voltage().abs();
        for (s, &scale) in scales.iter().enumerate() {
            let single = serial_at(&net, scale, &cfg);
            for bus in 0..net.num_buses() {
                assert!(
                    (res.v[s][bus] - single.v[bus]).abs() < 1e-4 * v0,
                    "scenario {s} bus {bus}: {:?} vs {:?}",
                    res.v[s][bus],
                    single.v[bus]
                );
            }
        }
        // Heavier loading sags more.
        let sag = |s: usize| res.v[s].iter().map(|v| v.abs()).fold(f64::INFINITY, f64::min);
        assert!(sag(0) > sag(3));
    }

    #[test]
    fn batching_amortises_launches_on_generated_trees() {
        let mut rng = StdRng::seed_from_u64(77);
        let net = balanced_binary(1023, &GenSpec::default(), &mut rng);
        let cfg = SolverConfig::default();

        // 16 scenarios in one batch…
        let scenarios: Vec<Vec<Complex>> =
            (0..16).map(|k| loads_scaled(&net, 0.5 + 0.05 * k as f64)).collect();
        let mut b16 = batch();
        let r16 = b16.solve(&net, &scenarios, &cfg);
        assert!(r16.converged());

        // …versus one scenario costed 16 times.
        let mut b1 = batch();
        let r1 = b1.solve(&net, &scenarios[..1], &cfg);
        let per_scenario_batched = r16.timing.total_us() / 16.0;
        let per_scenario_single = r1.timing.total_us();
        assert!(
            per_scenario_batched < 0.4 * per_scenario_single,
            "batching must amortise fixed costs: {per_scenario_batched:.1} vs {per_scenario_single:.1} µs/scenario"
        );
    }

    #[test]
    fn masked_scenario_reports_its_freeze_iteration_not_max_iter() {
        let net = ieee13();
        let cfg = SolverConfig::default();
        // Three healthy scenarios around one poisoned with a NaN load at
        // a non-root bus (the root injection is guarded): the monitor
        // trips within the first iterations and the triage masks it.
        let mut scenarios: Vec<Vec<Complex>> =
            [0.6, 1.0, 1.2].iter().map(|&sc| loads_scaled(&net, sc)).collect();
        let mut bad = loads_scaled(&net, 1.0);
        bad[5] = Complex::new(f64::NAN, f64::NAN);
        scenarios.insert(1, bad);

        let res = batch().solve(&net, &scenarios, &cfg);
        let at = match res.statuses[1] {
            SolveStatus::NumericalFailure { at_iteration }
            | SolveStatus::Diverged { at_iteration } => at_iteration,
            other => panic!("poisoned scenario must be masked, got {other:?}"),
        };
        // The freeze iteration is when the mask landed, not the cap and
        // not the batch's final iteration count.
        assert!(at >= 1, "freeze iteration must be recorded");
        assert!(
            at < cfg.max_iter,
            "frozen scenario must not report the iteration cap ({at} vs {})",
            cfg.max_iter
        );
        assert!(
            at <= res.iterations,
            "freeze at iteration {at} cannot postdate the batch's {} iterations",
            res.iterations
        );
        // The survivors still converge to the serial answer.
        let v0 = net.source_voltage().abs();
        for &(s, scale) in [(0usize, 0.6), (2, 1.0), (3, 1.2)].iter() {
            assert_eq!(res.statuses[s], SolveStatus::Converged, "scenario {s}");
            let single = serial_at(&net, scale, &cfg);
            for bus in 0..net.num_buses() {
                assert!(
                    (res.v[s][bus] - single.v[bus]).abs() < 1e-4 * v0,
                    "scenario {s} bus {bus} drifted after masking"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one scenario")]
    fn empty_batch_rejected() {
        let net = ieee13();
        batch().solve(&net, &[], &SolverConfig::default());
    }

    #[test]
    #[should_panic(expected = "scenario 1 has")]
    fn wrong_length_scenario_rejected() {
        let net = ieee13();
        let good = loads_scaled(&net, 1.0);
        let bad = vec![Complex::ZERO; 5];
        batch().solve(&net, &[good, bad], &SolverConfig::default());
    }
}
