//! Property tests of the service layer's three policies, over random
//! networks and random policy parameters:
//!
//! * deadline-hit solves always report a *partial* iteration count and
//!   an elapsed time at or past the budget — never a fabricated final
//!   answer;
//! * a service whose breaker is open (dead device) still answers, and
//!   its voltages match the serial reference to 1e-9 V;
//! * a burst that overflows the admission queue sheds exactly the
//!   overflow — every request is answered or rejected, never dropped.

use std::time::Duration;

use check::gen::{tuple2, tuple3, u64_any, usize_in};
use check::{checker, prop_assert, prop_assert_eq, CaseResult};
use fbs::{
    Backend, Deadline, GpuSolver, Outcome, Request, SerialSolver, ServiceConfig, SolveService,
    SolveStatus, SolverConfig,
};
use powergrid::gen::{random_tree, GenSpec};
use rng::rngs::StdRng;
use rng::SeedableRng;
use simt::{Device, DeviceProps, FaultKind, FaultPlan, HostProps};

fn net_for(n: usize, seed: u64) -> powergrid::RadialNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    random_tree(n, 8, &GenSpec::default(), &mut rng)
}

#[test]
fn deadline_hit_solves_report_partial_progress() {
    checker("deadline_hit_solves_report_partial_progress").cases(24).run(
        tuple3(usize_in(32..400), u64_any(), usize_in(10..60)),
        |&(n, seed, pct)| -> CaseResult {
            let net = net_for(n, seed);
            // Tight tolerance forces a multi-iteration solve, so a
            // mid-range budget lands inside the loop.
            let cfg = SolverConfig::new(1e-12, 200);
            let full = GpuSolver::new(Device::new(DeviceProps::paper_rig())).solve(&net, &cfg);
            let budget = full.timing.total_us() * (pct as f64 / 100.0);

            let cut = GpuSolver::new(Device::new(DeviceProps::paper_rig()))
                .solve(&net, &cfg.with_deadline(budget));
            match cut.status {
                SolveStatus::DeadlineExceeded { at_iteration, elapsed_us } => {
                    prop_assert!(at_iteration >= 1, "deadline fires after a full iteration");
                    prop_assert!(
                        at_iteration <= full.iterations,
                        "partial count {} cannot exceed the full run's {}",
                        at_iteration,
                        full.iterations
                    );
                    prop_assert_eq!(cut.iterations, at_iteration);
                    prop_assert!(
                        elapsed_us as f64 >= budget,
                        "reported elapsed {} µs is before the {budget} µs budget",
                        elapsed_us
                    );
                }
                // A budget past the convergence point changes nothing.
                SolveStatus::Converged => {
                    prop_assert_eq!(cut.iterations, full.iterations);
                }
                other => {
                    return Err(check::CaseError::fail(format!(
                        "deadline run ended {other:?}"
                    )))
                }
            }
            Ok(())
        },
    );
}

#[test]
fn breaker_open_service_matches_serial_to_1e9() {
    checker("breaker_open_service_matches_serial_to_1e9").cases(12).run(
        tuple2(usize_in(16..220), u64_any()),
        |&(n, seed)| -> CaseResult {
            let net = net_for(n, seed);
            let cfg = SolverConfig::default();
            let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);

            // Kill the device at the start of every attempt: the first
            // request trips the breaker, the rest are served open.
            let plan = FaultPlan::scripted(
                (0..64).map(|k| (3 + 11 * k, FaultKind::DeviceLost { at_op: 0 })),
            );
            let scfg = ServiceConfig {
                backend: Backend::Gpu,
                max_retries: 0,
                breaker_threshold: 1,
                breaker_probe_after: 1000,
                ..ServiceConfig::default()
            };
            let mut svc = SolveService::new(scfg, DeviceProps::paper_rig(), HostProps::paper_rig())
                .with_fault_plan(plan);

            for req in 0..4 {
                svc.submit(Request::Solve { net: net.clone(), cfg }).expect("queue admits");
                let resp = svc.process_one().expect("queued");
                let res = match resp.outcome {
                    Outcome::Solved(res) => res,
                    other => {
                        return Err(check::CaseError::fail(format!(
                            "request {req} ended {other:?}"
                        )))
                    }
                };
                prop_assert!(res.converged(), "request {} must converge, got {:?}", req, res.status);
                for (bus, (a, b)) in res.v.iter().zip(&serial.v).enumerate() {
                    prop_assert!(
                        (a.abs() - b.abs()).abs() < 1e-9,
                        "request {}, bus {}: |V| drifted {:e}",
                        req,
                        bus,
                        (a.abs() - b.abs()).abs()
                    );
                }
            }
            prop_assert_eq!(svc.breaker().name(), "open");
            prop_assert!(svc.stats().fallback_served >= 3, "open breaker must route to fallback");
            Ok(())
        },
    );
}

#[test]
fn wall_watchdog_is_invisible_unfired_and_cuts_cooperatively() {
    checker("wall_watchdog_is_invisible_unfired_and_cuts_cooperatively").cases(10).run(
        tuple2(usize_in(64..400), u64_any()),
        |&(n, seed)| -> CaseResult {
            let net = net_for(n, seed);
            let cfg = SolverConfig::new(1e-12, 300);

            // An armed-but-unfired watchdog must not perturb anything:
            // all decisions are modeled-time, the wall thread only
            // watches a cooperative flag the solve never sees set.
            let guarded = ServiceConfig {
                deadline: Deadline::none().with_wall(Duration::from_secs(30)),
                ..ServiceConfig::default()
            };
            let mut a = SolveService::new(
                ServiceConfig::default(),
                DeviceProps::paper_rig(),
                HostProps::paper_rig(),
            );
            let mut b =
                SolveService::new(guarded, DeviceProps::paper_rig(), HostProps::paper_rig());
            let ra = a.serve_at(0.0, Request::Solve { net: net.clone(), cfg });
            let rb = b.serve_at(0.0, Request::Solve { net: net.clone(), cfg });
            let (va, vb) = match (&ra.outcome, &rb.outcome) {
                (Outcome::Solved(x), Outcome::Solved(y)) => (x, y),
                other => {
                    return Err(check::CaseError::fail(format!("unexpected pair {other:?}")))
                }
            };
            prop_assert_eq!(va.iterations, vb.iterations);
            prop_assert!(
                va.v.iter().zip(&vb.v).all(|(x, y)| x == y),
                "unfired watchdog must be bit-invisible"
            );

            // A zero-length wall fires as soon as the OS schedules the
            // watchdog thread. The cut is *cooperative* — polled at
            // convergence checks — so whichever side wins the race the
            // response is a Solved outcome that either converged or
            // stopped at a whole-iteration boundary with partial state.
            let strangled = ServiceConfig {
                deadline: Deadline::none().with_wall(Duration::ZERO),
                ..ServiceConfig::default()
            };
            let mut c =
                SolveService::new(strangled, DeviceProps::paper_rig(), HostProps::paper_rig());
            let rc = c.serve_at(0.0, Request::Solve { net: net.clone(), cfg });
            match rc.outcome {
                Outcome::Solved(res) => match res.status {
                    SolveStatus::Converged => {
                        prop_assert_eq!(res.iterations, va.iterations);
                    }
                    SolveStatus::DeadlineExceeded { at_iteration, .. } => {
                        prop_assert!(at_iteration >= 1, "cut lands after a full iteration");
                        prop_assert_eq!(res.iterations, at_iteration);
                        prop_assert!(
                            res.iterations <= va.iterations,
                            "partial count {} cannot exceed the full run's {}",
                            res.iterations,
                            va.iterations
                        );
                    }
                    other => {
                        return Err(check::CaseError::fail(format!(
                            "watchdog cut ended {other:?}"
                        )))
                    }
                },
                other => {
                    return Err(check::CaseError::fail(format!("watchdog run ended {other:?}")))
                }
            }
            Ok(())
        },
    );
}

#[test]
fn burst_backpressure_sheds_exactly_the_overflow() {
    checker("burst_backpressure_sheds_exactly_the_overflow").cases(24).run(
        tuple3(usize_in(1..20), usize_in(1..8), u64_any()),
        |&(m, capacity, seed)| -> CaseResult {
            let net = net_for(24, seed);
            let cfg = SolverConfig::default();
            let scfg = ServiceConfig { queue_capacity: capacity, ..ServiceConfig::default() };
            let mut svc =
                SolveService::new(scfg, DeviceProps::paper_rig(), HostProps::paper_rig());

            // m simultaneous arrivals against a queue of `capacity`.
            let arrivals =
                (0..m).map(|_| (0.0, Request::Solve { net: net.clone(), cfg })).collect();
            let responses = svc.run_stream(arrivals);

            prop_assert_eq!(responses.len(), m, "every request gets exactly one response");
            let shed = responses
                .iter()
                .filter(|r| matches!(r.outcome, Outcome::Rejected { .. }))
                .count();
            prop_assert_eq!(shed, m.saturating_sub(capacity), "shed is exactly the overflow");
            prop_assert_eq!(svc.stats().served as usize, m - shed);
            prop_assert!(svc.stats().peak_queue_depth <= capacity);
            for r in &responses {
                if let Outcome::Rejected { queue_depth } = r.outcome {
                    prop_assert_eq!(queue_depth, capacity, "sheds report the full queue");
                }
            }
            Ok(())
        },
    );
}
