//! Property tests of the fault-injection / recovery layer: every
//! backend, run under the resilient supervisor with a seeded plan of
//! recoverable faults, must land on the same answer as a fault-free
//! solve — to 1e-9 V on the golden fixed-seed 1K tree and the IEEE-13
//! feeder. Device loss must walk the degradation chain instead of
//! failing, and seeded plans must replay byte-identically.

use fbs::{Backend, ResilientSolver, SerialSolver, SolveResult, SolverConfig};
use numc::Complex;
use powergrid::gen::{balanced_binary, GenSpec};
use powergrid::ieee::ieee13;
use powergrid::RadialNetwork;
use rng::rngs::StdRng;
use rng::SeedableRng;
use simt::{DeviceProps, FaultKind, FaultPlan, HostProps};

const TREE_BUSES: usize = 1023;
const TREE_SEED: u64 = 20200817;
const FAULT_SEED: u64 = 20200817;

const BACKENDS: [Backend; 6] = [
    Backend::Serial,
    Backend::Multicore,
    Backend::Gpu,
    Backend::GpuDirect,
    Backend::GpuAtomic,
    Backend::GpuJump,
];

fn cfg() -> SolverConfig {
    SolverConfig::new(1e-12, 200)
}

fn tree() -> RadialNetwork {
    let mut rng = StdRng::seed_from_u64(TREE_SEED);
    balanced_binary(TREE_BUSES, &GenSpec::default(), &mut rng)
}

fn rig() -> (DeviceProps, HostProps) {
    (DeviceProps::paper_rig(), HostProps::paper_rig())
}

/// Runs `backend` resiliently under `plan` and checks the result
/// against the fault-free reference voltages to 1e-9 V per bus.
fn check_recovers(net: &RadialNetwork, reference: &[Complex], backend: Backend, rate: f64) {
    let (props, host) = rig();
    let mut solver = ResilientSolver::new(backend, props, host)
        .with_fault_plan(FaultPlan::seeded(FAULT_SEED, rate));
    let res = solver
        .solve(net, &cfg())
        .unwrap_or_else(|e| panic!("{}: recoverable faults must not kill the solve: {e}", backend.name()));
    assert!(res.converged(), "{}: ended {:?}", backend.name(), res.status);

    let rep = res.fault_report.as_ref().expect("resilient solves carry a fault report");
    if backend.is_device() {
        assert!(
            rep.faults_injected >= 1,
            "{}: the seeded plan was chosen to fire at least once, got a clean run",
            backend.name()
        );
    } else {
        assert_eq!(rep.faults_injected, 0, "{}: CPU backends see no device faults", backend.name());
    }

    for (bus, (r, g)) in reference.iter().zip(&res.v).enumerate() {
        let err = (r.abs() - g.abs()).abs();
        assert!(
            err < 1e-9,
            "{}: bus {bus} |V| off by {err:.3e} V after recovery ({} faults, {} rollbacks)",
            backend.name(),
            rep.faults_injected,
            rep.rollbacks,
        );
    }
}

#[test]
fn all_backends_recover_on_the_golden_tree() {
    let net = tree();
    let reference = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg()).v;
    for backend in BACKENDS {
        // The jump solver launches one batched kernel sequence per
        // iteration instead of one kernel per tree level, so it issues
        // ~6× fewer device ops — it needs a higher per-op rate for the
        // plan to fire at all.
        let rate = if backend == Backend::GpuJump { 2e-2 } else { 5e-3 };
        check_recovers(&net, &reference, backend, rate);
    }
}

#[test]
fn all_backends_recover_on_ieee13() {
    let net = ieee13();
    let reference = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg()).v;
    for backend in BACKENDS {
        // The feeder is tiny (few ops per solve), so the rate is higher
        // to guarantee the device backends actually see a fault.
        check_recovers(&net, &reference, backend, 2e-2);
    }
}

#[test]
fn device_loss_walks_the_degradation_chain() {
    let net = tree();
    let reference = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg()).v;
    let (props, host) = rig();
    let plan = FaultPlan::seeded(FAULT_SEED, 0.0)
        .with_fault_at(50, FaultKind::DeviceLost { at_op: 0 });
    let mut solver = ResilientSolver::new(Backend::Gpu, props, host).with_fault_plan(plan);
    let res = solver.solve(&net, &cfg()).expect("degradation must rescue a lost device");

    let rep = res.fault_report.as_ref().unwrap();
    assert_eq!(
        rep.backends,
        vec!["gpu".to_string(), "multicore".to_string()],
        "loss on the GPU must degrade to the multicore backend"
    );
    assert!(matches!(res.status, fbs::SolveStatus::Recovered { .. }), "got {:?}", res.status);
    for (bus, (r, g)) in reference.iter().zip(&res.v).enumerate() {
        assert!(
            (r.abs() - g.abs()).abs() < 1e-9,
            "bus {bus}: degraded answer drifted from the fault-free one"
        );
    }
}

/// Two resilient solves from identical fresh plans must be
/// indistinguishable: bit-identical voltages, identical fault
/// bookkeeping — the replay guarantee the CLI's `--fault-seed` and
/// `FBS_FAULT_SEED` override rely on.
#[test]
fn seeded_plans_replay_byte_identically() {
    let net = tree();
    let run = || -> SolveResult {
        let (props, host) = rig();
        ResilientSolver::new(Backend::GpuAtomic, props, host)
            .with_fault_plan(FaultPlan::seeded(99, 5e-3))
            .solve(&net, &cfg())
            .expect("recoverable run")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.v, b.v, "replayed voltages must be bit-identical");
    assert_eq!(a.j, b.j, "replayed currents must be bit-identical");
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.status, b.status);
    assert_eq!(a.fault_report, b.fault_report, "fault bookkeeping must replay exactly");
    assert!(a.fault_report.unwrap().faults_injected >= 1, "the seed was chosen to fire");
}
