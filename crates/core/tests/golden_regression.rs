//! Golden regression pins on *generated* feeders: a fixed-seed 1K
//! balanced binary tree plus the IEEE-13 feeder, per-bus voltage
//! magnitudes checked against values produced by the serial solver at
//! tol 1e-12 and pinned to 1e-9 V. These freeze both the solver physics
//! and the in-repo RNG stream — a refactor of either that silently
//! moves results fails here first.

use fbs::{GpuSolver, JumpSolver, SerialSolver, SolveResult, SolverConfig};
use powergrid::gen::{balanced_binary, GenSpec};
use powergrid::ieee::ieee13;
use powergrid::RadialNetwork;
use rng::rngs::StdRng;
use rng::SeedableRng;
use simt::{Device, DeviceProps, HostProps};

const TREE_BUSES: usize = 1023;
const TREE_SEED: u64 = 20200817;

/// (bus, |V|) for every 64th bus of the tree plus the last bus, volts.
const GOLDEN_TREE_VMAG: [(usize, f64); 17] = [
    (0, 7200.000000000),
    (64, 6792.095854426),
    (128, 6789.871741342),
    (192, 6745.817718372),
    (256, 6787.906542459),
    (320, 6765.387630656),
    (384, 6745.138032981),
    (448, 6765.636409412),
    (512, 6786.537642372),
    (576, 6780.422393947),
    (640, 6764.721273003),
    (704, 6763.984340893),
    (768, 6744.484237637),
    (832, 6764.991050153),
    (896, 6765.779493615),
    (960, 6769.980473409),
    (1022, 6770.151488892),
];

/// Serial iteration count at tol 1e-12 — pins the convergence path, not
/// just the fixed point.
const GOLDEN_TREE_ITERS: u32 = 11;

/// |V| for every IEEE-13 bus, volts.
const GOLDEN_I13_VMAG: [f64; 13] = [
    2401.777119829,
    2241.110369394,
    2236.286635248,
    2234.824795463,
    2236.618639529,
    2235.163793463,
    2129.354653465,
    2129.354653465,
    2127.403466725,
    2126.383921709,
    2124.921205345,
    2125.824778733,
    2116.661616069,
];

fn cfg() -> SolverConfig {
    SolverConfig::new(1e-12, 200)
}

fn tree() -> RadialNetwork {
    let mut rng = StdRng::seed_from_u64(TREE_SEED);
    balanced_binary(TREE_BUSES, &GenSpec::default(), &mut rng)
}

fn check_tree(res: &SolveResult, who: &str, tol_v: f64) {
    assert!(res.converged(), "{who} must converge on the golden tree");
    for &(bus, vmag) in &GOLDEN_TREE_VMAG {
        assert!(
            (res.v[bus].abs() - vmag).abs() < tol_v,
            "{who}: tree bus {bus} drifted: |V| = {:.9} vs {vmag}",
            res.v[bus].abs()
        );
    }
}

#[test]
fn serial_tree_matches_golden_magnitudes() {
    let res = SerialSolver::new(HostProps::paper_rig()).solve(&tree(), &cfg());
    check_tree(&res, "serial", 1e-9);
    assert_eq!(res.iterations, GOLDEN_TREE_ITERS, "iteration count drifted");
}

#[test]
fn gpu_tree_matches_golden_magnitudes() {
    // Different summation order than the host solver, so the pin is
    // looser — still far tighter than any physical drift.
    let mut solver = GpuSolver::new(Device::new(DeviceProps::paper_rig()));
    let res = solver.solve(&tree(), &cfg());
    check_tree(&res, "gpu", 1e-6);
}

#[test]
fn jump_tree_matches_golden_magnitudes() {
    let mut solver = JumpSolver::new(Device::new(DeviceProps::paper_rig()));
    let res = solver.solve(&tree(), &cfg());
    check_tree(&res, "jump", 1e-6);
}

#[test]
fn serial_ieee13_matches_golden_magnitudes() {
    let res = SerialSolver::new(HostProps::paper_rig()).solve(&ieee13(), &cfg());
    assert!(res.converged());
    for (bus, &vmag) in GOLDEN_I13_VMAG.iter().enumerate() {
        assert!(
            (res.v[bus].abs() - vmag).abs() < 1e-9,
            "ieee13 bus {bus} drifted: |V| = {:.9} vs {vmag}",
            res.v[bus].abs()
        );
    }
}
