//! Integrity-layer property tests: checked transfers detect scripted
//! corruption on the *very first* request, the recovery layer retries
//! it, and the circuit breaker never burns fuel on a retryable
//! corruption — at the service level and behind the fleet. The shadow
//! sampler independently re-verifies answered voltages against the CPU
//! oracle to 1e-9 V.

use fbs::{
    BreakerState, FleetConfig, FleetRequest, FleetService, IntegrityConfig,
    IntegritySampler, Outcome, Request, SerialSolver, ServiceConfig, SolveService,
    SolverConfig,
};
use powergrid::ieee::ieee13;
use simt::{DeviceProps, FaultKind, FaultPlan, HostProps};

fn cfg() -> SolverConfig {
    SolverConfig::new(1e-12, 200)
}

fn service(plan: FaultPlan) -> SolveService {
    SolveService::new(ServiceConfig::default(), DeviceProps::paper_rig(), HostProps::paper_rig())
        .with_fault_plan(plan)
}

/// Probes scripted [`FaultKind::TransferCorruption`] across early op
/// indices until at least `want` distinct first requests *detect* a
/// corruption via the checked-transfer CRC, asserting the invariants on
/// every detecting run. Returns how many detecting runs were seen.
///
/// Checkpoints every iteration so the op stream carries a checked
/// snapshot read-back roughly once per sweep — otherwise nearly every
/// early op is a kernel launch and a scripted transfer corruption has
/// almost nothing to land on.
fn probe_solve_corruptions(want: usize) -> usize {
    let net = ieee13();
    let reference = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg());
    let probe_cfg = cfg().with_recovery(1, SolverConfig::DEFAULT_MAX_RECOVERIES);
    let mut detected_runs = 0;
    for op in 0..200u64 {
        let plan = FaultPlan::scripted([(op, FaultKind::TransferCorruption)]);
        let mut svc = service(plan);
        let resp = svc.serve_at(0.0, Request::Solve { net: net.clone(), cfg: probe_cfg });
        let Outcome::Solved(res) = &resp.outcome else {
            panic!("first request with corruption at op {op} ended {:?}", resp.outcome);
        };
        assert!(
            res.status.is_converged(),
            "corruption at op {op}: first request must still converge, got {:?}",
            res.status
        );
        for (bus, (a, b)) in res.v.iter().zip(&reference.v).enumerate() {
            assert!(
                (a.abs() - b.abs()).abs() < 1e-9,
                "corruption at op {op}, bus {bus}: |V| drifted {:e}",
                (a.abs() - b.abs()).abs()
            );
        }
        // A retryable corruption must never feed the breaker.
        assert_eq!(svc.breaker(), BreakerState::Closed, "breaker tripped for op {op}");
        assert_eq!(
            svc.stats().device_failures,
            0,
            "corruption at op {op} was charged as an unrecoverable device failure"
        );
        let report = res.fault_report.as_ref().expect("armed plan attaches a report");
        if report.corruptions_detected > 0 {
            detected_runs += 1;
            if detected_runs >= want {
                break;
            }
        }
    }
    detected_runs
}

#[test]
fn first_request_checked_transfer_corruption_is_detected_retried_and_breaker_stays_closed() {
    let detected = probe_solve_corruptions(3);
    assert!(
        detected >= 3,
        "expected at least 3 op indices whose corruption lands on a checked transfer, \
         got {detected} — the CRC net has a hole"
    );
}

#[test]
fn first_batch_request_checked_corruption_is_detected_and_breaker_stays_closed() {
    let net = ieee13();
    let scenarios: Vec<Vec<_>> = (0..8)
        .map(|k| net.buses().iter().map(|b| b.load * (0.7 + 0.05 * k as f64)).collect())
        .collect();
    let mut detected_runs = 0;
    for op in 0..200u64 {
        let plan = FaultPlan::scripted([(op, FaultKind::TransferCorruption)]);
        let mut svc = service(plan);
        let resp = svc.serve_at(
            0.0,
            Request::Batch { net: net.clone(), scenarios: scenarios.clone(), cfg: cfg() },
        );
        let Outcome::Batch(res) = &resp.outcome else {
            panic!("batch with corruption at op {op} ended {:?}", resp.outcome);
        };
        assert!(
            res.converged(),
            "corruption at op {op}: every scenario must still converge"
        );
        assert_eq!(svc.breaker(), BreakerState::Closed, "breaker tripped for op {op}");
        assert_eq!(svc.stats().device_failures, 0, "op {op} charged as unrecoverable");
        if res.fault_report.as_ref().is_some_and(|r| r.corruptions_detected > 0) {
            detected_runs += 1;
            if detected_runs >= 2 {
                break;
            }
        }
    }
    assert!(
        detected_runs >= 2,
        "no batch op index produced a detected corruption ({detected_runs} found)"
    );
}

#[test]
fn fleet_first_request_corruption_keeps_every_breaker_closed_and_answers_verify() {
    let net = ieee13();
    let mut checked = 0;
    for op in 0..120u64 {
        let plan = FaultPlan::scripted([(op, FaultKind::TransferCorruption)]);
        let fcfg = FleetConfig::uniform(2);
        let mut fleet = FleetService::new(fcfg)
            .with_fault_plan_on(0, plan)
            .with_integrity(IntegritySampler::new(
                IntegrityConfig { sample_every: 1, ..IntegrityConfig::default() },
                HostProps::paper_rig(),
            ));
        let responses = fleet.run_stream(vec![(
            0.0,
            FleetRequest::new(Request::Solve { net: net.clone(), cfg: cfg() }),
        )]);
        assert_eq!(responses.len(), 1);
        assert!(responses[0].answered(), "first fleet request must be answered (op {op})");
        for h in fleet.health() {
            assert_eq!(
                h.breaker,
                BreakerState::Closed,
                "device {} breaker tripped on a retryable corruption (op {op})",
                h.ordinal
            );
        }
        let istats = fleet.integrity_stats();
        assert_eq!(istats.sampled, 1, "sample_every=1 shadow-verifies the answer");
        assert_eq!(
            istats.mismatches, 0,
            "op {op}: an answered corruption escaped every net (err {:e} V)",
            istats.worst_err_v
        );
        checked += 1;
    }
    assert_eq!(checked, 120);
}
