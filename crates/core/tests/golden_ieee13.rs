//! Golden regression pins: the IEEE-13 positive-sequence solution must
//! not drift. Values were produced by the serial solver at tol 1e-12 and
//! are pinned to 1e-6 V so any algorithmic change that moves physics
//! (rather than performance) fails loudly — across all four solvers.

use fbs::{
    BackwardStrategy, GpuSolver, JumpSolver, MulticoreSolver, SerialSolver, SolveResult,
    SolverConfig,
};
use powergrid::ieee::ieee13;
use simt::{Device, DeviceProps, HostProps};

/// (bus, Re V, Im V) at tol 1e-12, volts.
const GOLDEN_V: [(usize, f64, f64); 13] = [
    (0, 2401.777119829, 0.000000000),
    (1, 2239.244156445, -91.440120474),
    (2, 2234.316834612, -93.841342477),
    (3, 2232.824253473, -94.539513013),
    (4, 2234.641927679, -94.012731845),
    (5, 2233.146156035, -94.949615019),
    (6, 2123.515985092, -157.578873231),
    (7, 2123.515985092, -157.578873231),
    (8, 2121.467976408, -158.805337791),
    (9, 2120.389200891, -159.556319992),
    (10, 2118.883354627, -160.073290750),
    (11, 2119.830972747, -159.523154610),
    (12, 2110.193563854, -165.346666150),
];

const GOLDEN_J_ROOT: (f64, f64) = (513.535210020, -359.394587374);
const GOLDEN_LOSSES_W: f64 = 78063.784;

fn cfg() -> SolverConfig {
    SolverConfig::new(1e-12, 200)
}

fn check(res: &SolveResult, who: &str, tol_v: f64) {
    assert!(res.converged(), "{who} must converge");
    for &(bus, re, im) in &GOLDEN_V {
        assert!(
            (res.v[bus].re - re).abs() < tol_v && (res.v[bus].im - im).abs() < tol_v,
            "{who}: bus {bus} drifted: {:?} vs ({re}, {im})",
            res.v[bus]
        );
    }
    assert!((res.j[0].re - GOLDEN_J_ROOT.0).abs() < 1e-3, "{who}: root current drifted");
    assert!((res.j[0].im - GOLDEN_J_ROOT.1).abs() < 1e-3, "{who}: root current drifted");
    let losses = res.losses(&ieee13()).re;
    assert!((losses - GOLDEN_LOSSES_W).abs() < 1.0, "{who}: losses drifted to {losses}");
}

#[test]
fn serial_matches_golden() {
    let res = SerialSolver::new(HostProps::paper_rig()).solve(&ieee13(), &cfg());
    check(&res, "serial", 1e-6);
}

#[test]
fn multicore_matches_golden() {
    let res = MulticoreSolver::new(HostProps::paper_rig(), 4).solve(&ieee13(), &cfg());
    check(&res, "multicore", 1e-6);
}

#[test]
fn gpu_strategies_match_golden() {
    for strategy in
        [BackwardStrategy::SegScan, BackwardStrategy::Direct, BackwardStrategy::AtomicScatter]
    {
        let mut solver = GpuSolver::with_strategy(
            Device::with_workers(DeviceProps::paper_rig(), 2),
            strategy,
        );
        let res = solver.solve(&ieee13(), &cfg());
        check(&res, &format!("gpu-{strategy:?}"), 1e-6);
    }
}

#[test]
fn jump_matches_golden() {
    let mut solver = JumpSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2));
    let res = solver.solve(&ieee13(), &cfg());
    // Pointer jumping reorders path sums; allow rounding-level slack.
    check(&res, "jump", 1e-5);
}

#[test]
fn residual_history_decays_geometrically() {
    let res = SerialSolver::new(HostProps::paper_rig()).solve(&ieee13(), &cfg());
    assert_eq!(res.residual_history.len(), res.iterations as usize);
    assert_eq!(*res.residual_history.last().unwrap(), res.residual);
    // Strictly decreasing after the first step, and fast.
    for w in res.residual_history.windows(2).skip(1) {
        assert!(w[1] < w[0], "residuals must decrease: {:?}", res.residual_history);
    }
    let rate = res.convergence_rate().expect("enough iterations");
    assert!(rate < 0.2, "FBS on ieee13 converges fast, rate = {rate}");
}
