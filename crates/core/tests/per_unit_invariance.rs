//! Physics invariance: solving a network in per-unit must produce the
//! same (normalised) solution as solving it in SI units — the solvers
//! are scale-free, so any difference is a bug in either the solver or
//! the per-unit scaling.

use fbs::{GpuSolver, SerialSolver, SolverConfig};
use powergrid::ieee::{ieee13, ieee37};
use powergrid::pu::{to_per_unit, PuBase};
use simt::{Device, DeviceProps, HostProps};

#[test]
fn per_unit_and_si_solutions_agree() {
    for net in [ieee13(), ieee37()] {
        let base = PuBase::for_network(&net);
        let pu_net = to_per_unit(&net, base);
        let cfg = SolverConfig::default();

        let si = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
        let pu = SerialSolver::new(HostProps::paper_rig()).solve(&pu_net, &cfg);
        assert!(si.converged() && pu.converged());
        assert_eq!(si.iterations, pu.iterations, "scale-free iterates");

        for bus in 0..net.num_buses() {
            let si_as_pu = base.v_to_pu(si.v[bus]);
            assert!(
                (si_as_pu - pu.v[bus]).abs() < 1e-9,
                "bus {bus}: {si_as_pu:?} vs {:?}",
                pu.v[bus]
            );
            let i_as_pu = base.i_to_pu(si.j[bus]);
            assert!((i_as_pu - pu.j[bus]).abs() < 1e-9);
        }
    }
}

#[test]
fn gpu_solver_is_also_scale_free() {
    let net = ieee13();
    let base = PuBase::for_network(&net);
    let pu_net = to_per_unit(&net, base);
    let cfg = SolverConfig::default();
    let mut g1 = GpuSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2));
    let mut g2 = GpuSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2));
    let si = g1.solve(&net, &cfg);
    let pu = g2.solve(&pu_net, &cfg);
    assert!(si.converged() && pu.converged());
    for bus in 0..net.num_buses() {
        assert!((base.v_to_pu(si.v[bus]) - pu.v[bus]).abs() < 1e-9);
    }
}

mod warm_start {
    use fbs::{GpuSolver, SerialSolver, SolverArrays, SolverConfig};
    use powergrid::gen::{balanced_binary, GenSpec};
    use rng::rngs::StdRng;
    use rng::SeedableRng;
    use simt::{Device, DeviceProps, HostProps};

    #[test]
    fn warm_start_cuts_iterations_on_small_perturbations() {
        let mut rng = StdRng::seed_from_u64(123);
        let net = balanced_binary(4095, &GenSpec::default(), &mut rng);
        let cfg = SolverConfig::default();
        let arrays = SolverArrays::new(&net);
        let solver = SerialSolver::new(HostProps::paper_rig());

        let base = solver.solve_arrays(&arrays, &cfg);
        assert!(base.converged());

        // Next time step: loads drift 2%.
        let mut next = net.clone();
        next.scale_loads(1.02);
        let next_arrays = SolverArrays::new(&next);

        let cold = solver.solve_arrays(&next_arrays, &cfg);
        let warm = solver.solve_warm(&next_arrays, &cfg, Some(&base.v));
        assert!(cold.converged() && warm.converged());
        assert!(
            warm.iterations < cold.iterations,
            "warm {} must beat cold {}",
            warm.iterations,
            cold.iterations
        );
        // Same answer to within the convergence tolerance (independently
        // converged iterates agree to ~tol·|V0|, not to machine epsilon).
        let tol_v = cfg.tol_volts(net.source_voltage().abs());
        for bus in 0..net.num_buses() {
            assert!((warm.v[bus] - cold.v[bus]).abs() < 10.0 * tol_v);
        }
    }

    #[test]
    fn gpu_warm_start_matches_serial_warm_start() {
        let mut rng = StdRng::seed_from_u64(321);
        let net = balanced_binary(1023, &GenSpec::default(), &mut rng);
        let cfg = SolverConfig::default();
        let arrays = SolverArrays::new(&net);
        let serial = SerialSolver::new(HostProps::paper_rig());
        let base = serial.solve_arrays(&arrays, &cfg);

        let mut scaled = net.clone();
        scaled.scale_loads(0.97);
        let next_arrays = SolverArrays::new(&scaled);

        let warm_cpu = serial.solve_warm(&next_arrays, &cfg, Some(&base.v));
        let mut gpu = GpuSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2));
        let warm_gpu = gpu.solve_warm(&next_arrays, &cfg, Some(&base.v));
        assert!(warm_cpu.converged() && warm_gpu.converged());
        assert_eq!(warm_cpu.iterations, warm_gpu.iterations);
        for bus in 0..net.num_buses() {
            assert!((warm_cpu.v[bus] - warm_gpu.v[bus]).abs() < 1e-7);
        }
    }
}
