//! Property tests of the fleet layer over random networks, fleet
//! shapes and fault scripts:
//!
//! * answered voltages match the serial reference to 1e-9 V no matter
//!   which device dies mid-stream — failover moves *where* work runs,
//!   never *what* it computes;
//! * conservation: every arrival gets exactly one response, answered
//!   plus shed equals submitted, nothing is silently lost under
//!   overload, quotas and priorities combined;
//! * the brown-out ladder sheds selectively — a uniform-priority
//!   stream can never evict, only shed uniformly;
//! * the same seeds and fault plans replay byte-identically;
//! * modeled throughput scales with fleet size on a saturating stream.

use check::gen::{tuple2, tuple3, u64_any, usize_in};
use check::{checker, prop_assert, prop_assert_eq, CaseResult};
use fbs::fleet::poisson_arrivals;
use fbs::{
    FleetConfig, FleetRequest, FleetService, Outcome, Priority, Request, SerialSolver,
    ShedReason, SolverConfig,
};
use powergrid::gen::{random_tree, GenSpec};
use rng::rngs::StdRng;
use rng::SeedableRng;
use simt::{FaultKind, FaultPlan, HostProps};

fn net_for(n: usize, seed: u64) -> powergrid::RadialNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    random_tree(n, 8, &GenSpec::default(), &mut rng)
}

/// Sticky device loss scripted at the start of (nearly) every attempt.
fn killer() -> FaultPlan {
    FaultPlan::scripted((0..256).map(|k| (2 + 5 * k, FaultKind::DeviceLost { at_op: 0 })))
}

#[test]
fn answered_solves_match_serial_to_1e9_despite_device_kills() {
    checker("answered_solves_match_serial_to_1e9_despite_device_kills").cases(8).run(
        tuple3(usize_in(16..160), u64_any(), usize_in(1..5)),
        |&(n, seed, devs)| -> CaseResult {
            let net = net_for(n, seed);
            let cfg = SolverConfig::default();
            let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);

            // Device 0 is scripted to die at the start of almost every
            // attempt; peers (or the CPU rung when devs == 1) absorb
            // the failovers.
            let fcfg =
                FleetConfig { queue_capacity: 64, ..FleetConfig::heterogeneous(devs) };
            let mut fleet = FleetService::new(fcfg).with_fault_plan_on(0, killer());
            let arrivals = poisson_arrivals(12, 400.0, seed ^ 0xfa11, |_| {
                FleetRequest::new(Request::Solve { net: net.clone(), cfg })
            });
            let responses = fleet.run_stream(arrivals);

            prop_assert_eq!(responses.len(), 12, "one response per arrival");
            for r in &responses {
                prop_assert!(r.shed.is_none(), "a deep queue sheds nothing");
                let res = match &r.outcome {
                    Outcome::Solved(res) => res,
                    other => {
                        return Err(check::CaseError::fail(format!(
                            "request {} ended {other:?}",
                            r.id
                        )))
                    }
                };
                prop_assert!(res.converged(), "request {} must converge", r.id);
                for (bus, (a, b)) in res.v.iter().zip(&serial.v).enumerate() {
                    prop_assert!(
                        (a.abs() - b.abs()).abs() < 1e-9,
                        "request {}, bus {}: |V| drifted {:e}",
                        r.id,
                        bus,
                        (a.abs() - b.abs()).abs()
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn conservation_answered_plus_shed_equals_submitted() {
    checker("conservation_answered_plus_shed_equals_submitted").cases(12).run(
        tuple3(usize_in(8..40), usize_in(1..6), u64_any()),
        |&(m, capacity, seed)| -> CaseResult {
            let net = net_for(24, seed);
            let cfg = SolverConfig::default();
            let devs = 1 + (seed % 3) as usize;
            let fcfg = FleetConfig {
                queue_capacity: capacity,
                tenant_quota: Some(2),
                ..FleetConfig::uniform(devs)
            };
            let mut fleet = FleetService::new(fcfg).with_fault_plan_on(0, killer());

            // A bursty mixed-class stream: three tenants, three
            // priority classes, arrivals much faster than service.
            let arrivals = poisson_arrivals(m, 5.0, seed ^ 0x0f1e_e7f1, |i| {
                let p = match i % 3 {
                    0 => Priority::Bulk,
                    1 => Priority::Normal,
                    _ => Priority::Critical,
                };
                FleetRequest::new(Request::Solve { net: net.clone(), cfg })
                    .with_priority(p)
                    .with_tenant((i % 3) as u32)
            });
            let responses = fleet.run_stream(arrivals);

            prop_assert_eq!(responses.len(), m, "every arrival gets exactly one response");
            let mut ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), m, "response ids are unique");

            let answered = responses.iter().filter(|r| r.answered()).count();
            let shed = responses.iter().filter(|r| r.shed.is_some()).count();
            prop_assert_eq!(answered + shed, m, "answered + shed covers everything");

            let stats = fleet.stats();
            prop_assert_eq!(stats.submitted as usize, m);
            prop_assert_eq!(stats.served as usize, answered);
            prop_assert_eq!(stats.shed() as usize, shed);
            prop_assert!(stats.peak_queue_depth <= capacity);

            for r in &responses {
                if let Some(why) = r.shed {
                    prop_assert!(
                        matches!(r.outcome, Outcome::Rejected { .. }),
                        "shed responses carry Rejected"
                    );
                    // Eviction requires a strictly higher-priority
                    // arrival, so the top class can never be evicted.
                    if why == ShedReason::Evicted {
                        prop_assert!(
                            r.priority < Priority::Critical,
                            "a top-priority request was evicted"
                        );
                    }
                } else {
                    prop_assert!(
                        matches!(r.outcome, Outcome::Solved(_)),
                        "answered requests carry a result (CPU rung cannot fail)"
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn uniform_priority_streams_never_evict() {
    checker("uniform_priority_streams_never_evict").cases(10).run(
        tuple2(usize_in(6..30), u64_any()),
        |&(m, seed)| -> CaseResult {
            let net = net_for(16, seed);
            let cfg = SolverConfig::default();
            let fcfg = FleetConfig { queue_capacity: 2, ..FleetConfig::uniform(1) };
            let mut fleet = FleetService::new(fcfg);
            let arrivals = poisson_arrivals(m, 2.0, seed, |_| {
                FleetRequest::new(Request::Solve { net: net.clone(), cfg })
            });
            let responses = fleet.run_stream(arrivals);
            prop_assert_eq!(fleet.stats().shed_evicted, 0, "no class outranks another");
            prop_assert_eq!(fleet.stats().shed_quota, 0, "no quota configured");
            for r in &responses {
                prop_assert!(
                    r.shed.is_none() || r.shed == Some(ShedReason::QueueFull),
                    "uniform streams only shed uniformly, got {:?}",
                    r.shed
                );
            }
            Ok(())
        },
    );
}

#[test]
fn same_seed_and_fault_plan_replay_byte_identically() {
    checker("same_seed_and_fault_plan_replay_byte_identically").cases(6).run(
        tuple2(u64_any(), usize_in(1..5)),
        |&(seed, devs)| -> CaseResult {
            let net = net_for(40, seed);
            let cfg = SolverConfig::default();
            let loads: Vec<_> = net.buses().iter().map(|b| b.load).collect();
            let run = || {
                let fcfg = FleetConfig {
                    queue_capacity: 64,
                    shard_min: 16,
                    seed,
                    ..FleetConfig::heterogeneous(devs)
                };
                let mut fleet = FleetService::new(fcfg).with_fault_plan_on(0, killer());
                let arrivals = poisson_arrivals(10, 200.0, seed ^ 0x5eed, |i| {
                    // Every fourth request exercises the sharded path.
                    let req = if i % 4 == 3 {
                        let scenarios = (0..96)
                            .map(|s| {
                                let scale = 0.6 + 0.004 * s as f64;
                                loads.iter().map(|&l| l * scale).collect()
                            })
                            .collect();
                        Request::Batch { net: net.clone(), scenarios, cfg }
                    } else {
                        Request::Solve { net: net.clone(), cfg }
                    };
                    FleetRequest::new(req)
                });
                let responses = fleet.run_stream(arrivals);
                // Canonical projection: everything the scheduler
                // decided plus the numerical answer. Wall-clock
                // (`Timing::wall_us`) is recorded for transparency and
                // is the one legitimately nondeterministic field.
                let decisions = responses
                    .iter()
                    .map(|r| {
                        let v = match &r.outcome {
                            Outcome::Solved(res) => format!("{:?}", res.v),
                            Outcome::Batch(res) => format!("{:?}", res.v),
                            other => format!("{other:?}"),
                        };
                        format!(
                            "{} {:?} {} {} {} {} {} {} {} {:?} {v}",
                            r.id,
                            r.device,
                            r.backend,
                            r.start_us,
                            r.finish_us,
                            r.failovers,
                            r.hedged,
                            r.shards,
                            r.reclaimed,
                            r.shed,
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("\n");
                (decisions, format!("{:?}", fleet.stats()))
            };
            let (ra, sa) = run();
            let (rb, sb) = run();
            prop_assert!(ra == rb, "decisions and answers must replay byte-identically");
            prop_assert_eq!(sa, sb, "stats must replay byte-identically");
            Ok(())
        },
    );
}

#[test]
fn modeled_throughput_scales_with_fleet_size() {
    checker("modeled_throughput_scales_with_fleet_size").cases(5).run(
        tuple2(usize_in(32..96), u64_any()),
        |&(n, seed)| -> CaseResult {
            let net = net_for(n, seed);
            let cfg = SolverConfig::default();
            let makespan = |devs: usize| -> f64 {
                let fcfg = FleetConfig { queue_capacity: 64, ..FleetConfig::uniform(devs) };
                let mut fleet = FleetService::new(fcfg);
                // A saturating burst: everything arrives at once.
                let arrivals = (0..16)
                    .map(|_| {
                        (0.0, FleetRequest::new(Request::Solve { net: net.clone(), cfg }))
                    })
                    .collect();
                let responses = fleet.run_stream(arrivals);
                responses.iter().map(|r| r.finish_us).fold(0.0, f64::max)
            };
            let one = makespan(1);
            let four = makespan(4);
            prop_assert!(
                one / four > 2.5,
                "4 uniform devices must clear a saturating burst well over 2.5x \
                 faster than 1 (got {:.2}x)",
                one / four
            );
            Ok(())
        },
    );
}
