//! Property tests of the mesh/DG subsystem over randomized instances:
//!
//! 1. a meshed network whose ties are all **open** is bitwise identical
//!    to the plain radial solve — the outer loop must not engage;
//! 2. a PV generator with wide Q limits holds its bus magnitude at the
//!    set-point to the outer tolerance;
//! 3. a Q-limit-clamped generator is indistinguishable (to 1e-9 of the
//!    source magnitude) from an ordinary PQ bus loaded with the
//!    equivalent constant-power injection at the limit;
//! 4. single-loop compensation lands on the hand-computed Thevenin
//!    loop impedance, and the converged solution satisfies KVL across
//!    the re-closed tie.
//!
//! Plus the cross-backend agreement the paper's experiments rely on:
//! serial, multicore and GPU mesh solves agree to 1e-9 of the source
//! magnitude on every sampled meshed/DG instance.

use fbs::{
    GpuSolver, MeshProblem, MeshSolver, MulticoreSolver, OuterConfig, OuterStatus, SerialSolver,
    SolverConfig,
};
use numc::{c, Complex};
use powergrid::gen::{balanced_binary, random_tree, GenSpec};
use powergrid::{MeshedNetwork, MeshedNetworkBuilder, NetworkBuilder, PvBus, RadialNetwork};
use rng::rngs::StdRng;
use rng::{Rng, SeedableRng};
use simt::{Device, HostProps};

const SEEDS: u64 = 8;

fn cfg() -> SolverConfig {
    SolverConfig::default()
}

fn serial_mesh() -> MeshSolver<SerialSolver> {
    MeshSolver::new(SerialSolver::new(HostProps::paper_rig()))
}

/// A random radial tree of 33–200 buses.
fn tree(rng: &mut StdRng) -> RadialNetwork {
    let n = rng.gen_range(33usize..200);
    if rng.gen_bool(0.5) {
        balanced_binary(n, &GenSpec::default(), rng)
    } else {
        random_tree(n, 6, &GenSpec::default(), rng)
    }
}

/// Rebuilds `net` as a meshed network, appending `ties` and `gens`.
fn meshed_from(
    net: &RadialNetwork,
    ties: &[(usize, usize, Complex, bool)],
    gens: &[PvBus],
) -> MeshedNetwork {
    let mut b = MeshedNetworkBuilder::new(net.source_voltage());
    for bus in net.buses() {
        b.add_bus(bus.load);
    }
    for br in net.branches() {
        b.connect(br.from, br.to, br.z);
    }
    for &(from, to, z, closed) in ties {
        b.tie(from, to, z, closed);
    }
    for &g in gens {
        b.generator(g);
    }
    b.build().expect("sampled meshed instance must validate")
}

/// Samples up to `want` tie pairs that duplicate no existing edge.
fn sample_ties(
    net: &RadialNetwork,
    rng: &mut StdRng,
    want: usize,
    closed: bool,
) -> Vec<(usize, usize, Complex, bool)> {
    let n = net.num_buses();
    let mut used: std::collections::HashSet<(usize, usize)> = net
        .branches()
        .iter()
        .map(|br| (br.from.min(br.to), br.from.max(br.to)))
        .collect();
    let mut ties = Vec::new();
    for _ in 0..200 {
        if ties.len() == want {
            break;
        }
        let a = rng.gen_range(1usize..n);
        let b = rng.gen_range(1usize..n);
        if a == b || !used.insert((a.min(b), a.max(b))) {
            continue;
        }
        let z = c(rng.gen_range(0.05..0.5), rng.gen_range(0.05..0.5));
        ties.push((a, b, z, closed));
    }
    ties
}

#[test]
fn open_ties_are_a_bitwise_radial_pass_through() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(0xA11_0DE + seed);
        let net = tree(&mut rng);
        let ties = sample_ties(&net, &mut rng, 3, false);
        assert!(!ties.is_empty(), "seed {seed}: no ties sampled");
        let meshed = meshed_from(&net, &ties, &[]);
        assert!(meshed.is_plain_radial(), "open ties leave the network radial");

        let plain = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg());
        let r = serial_mesh().solve(&meshed, &cfg());
        assert_eq!(r.outer_status, OuterStatus::Radial, "seed {seed}");
        assert_eq!(r.outer_iterations, 0, "seed {seed}");
        for (bus, (a, b)) in r.inner.v.iter().zip(&plain.v).enumerate() {
            assert_eq!(a, b, "seed {seed}: bus {bus} drifted — pass-through must be bitwise");
        }
        assert_eq!(r.inner.iterations, plain.iterations, "seed {seed}");
    }
}

#[test]
fn wide_limit_pv_generators_hold_their_set_point() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(0xBEEF + seed);
        let net = tree(&mut rng);
        let v0 = net.source_voltage().abs();
        let sagged = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg());
        assert!(sagged.converged());

        // A generator at the feeder's weakest bus, targeting a point
        // between the sagged magnitude and the source, with limits wide
        // enough to never clamp.
        let (vmin, bus) = sagged.min_voltage();
        let v_set = vmin + 0.5 * (v0 - vmin);
        let gen = PvBus { bus, p_gen: 10_000.0, v_set, q_min: -1e9, q_max: 1e9 };
        let meshed = meshed_from(&net, &[], &[gen]);

        let r = serial_mesh().solve(&meshed, &cfg());
        assert!(r.converged(), "seed {seed}: {:?}", r.outer_status);
        let vm = r.inner.v[bus].abs();
        // The outer loop stops once the set-point error is under
        // tol_rel·|V0|; allow a small multiple for the last half-step.
        let tol = 10.0 * OuterConfig::default().tol_rel * v0;
        assert!(
            (vm - v_set).abs() < tol.max(1e-2),
            "seed {seed}: |V[{bus}]| = {vm} vs set-point {v_set}"
        );
    }
}

#[test]
fn clamped_generators_are_equivalent_pq_loads() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(0xC1A_4_9 + seed);
        let net = tree(&mut rng);
        let v0 = net.source_voltage().abs();
        let n = net.num_buses();
        let bus = rng.gen_range(1usize..n);

        // An unreachable set-point over a tiny Q range: the generator
        // must clamp at q_max and behave as a fixed PQ injection.
        let q_max = rng.gen_range(100.0..2_000.0);
        let gen = PvBus { bus, p_gen: 5_000.0, v_set: 1.05 * v0, q_min: -q_max, q_max };
        let meshed = meshed_from(&net, &[], &[gen]);

        // Machine-tight tolerances so both sides converge to the same
        // fixed point rather than to different ends of the band.
        let tight = SolverConfig { tol_rel: 1e-13, ..cfg() };
        let outer = OuterConfig::default().with_tol(1e-12);
        let r = MeshSolver::new(SerialSolver::new(HostProps::paper_rig()))
            .with_outer(outer)
            .solve(&meshed, &tight);
        assert!(r.converged(), "seed {seed}: {:?}", r.outer_status);
        assert_eq!(r.gen_modes[0], fbs::GenMode::ClampedMax, "seed {seed}");
        assert!((r.q_gen[0] - q_max).abs() < 1e-12, "seed {seed}");

        // Reference: the same tree with the clamped injection folded
        // into the bus load as an ordinary PQ draw.
        let mut b = NetworkBuilder::with_capacity(net.source_voltage(), n);
        for (i, bb) in net.buses().iter().enumerate() {
            let mut load = bb.load;
            if i == bus {
                load -= c(gen.p_gen, q_max);
            }
            b.add_bus(load);
        }
        for br in net.branches() {
            b.connect(br.from, br.to, br.z);
        }
        let pq = b.build().unwrap();
        let want = SerialSolver::new(HostProps::paper_rig()).solve(&pq, &tight);
        assert!(want.converged());
        for (i, (a, w)) in r.inner.v.iter().zip(&want.v).enumerate() {
            assert!(
                (*a - *w).abs() < 1e-9 * v0,
                "seed {seed}: bus {i}: clamped gen {a} vs equivalent PQ load {w}"
            );
        }
    }
}

#[test]
fn single_loop_compensation_matches_the_hand_computed_thevenin() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(0x7EE + seed);
        // A hand-checkable ladder: root 0 — 1 — … — (n-1), tie from the
        // far end back to a random ancestor.
        let n = rng.gen_range(4usize..12);
        let anchor = rng.gen_range(0usize..n - 2);
        let mut b = MeshedNetworkBuilder::new(c(2400.0, 0.0));
        let mut zs = Vec::new();
        for i in 0..n {
            let load = if i == 0 { Complex::ZERO } else { c(8_000.0, 2_000.0) };
            b.add_bus(load);
            if i > 0 {
                let z = c(rng.gen_range(0.1..1.0), rng.gen_range(0.1..1.0));
                zs.push(z);
                b.connect(i - 1, i, z);
            }
        }
        let z_tie = c(rng.gen_range(0.1..0.6), rng.gen_range(0.1..0.6));
        b.tie(n - 1, anchor, z_tie, true);
        let meshed = b.build().unwrap();

        // Hand-computed loop impedance: the tree path from the far end
        // down to the anchor, plus the tie's own impedance.
        let hand: Complex = zs[anchor..].iter().sum::<Complex>() + z_tie;
        let p = MeshProblem::new(&meshed);
        assert_eq!(p.num_loops(), 1, "seed {seed}");
        assert!(
            (p.thevenin()[0] - hand).abs() < 1e-12,
            "seed {seed}: Thevenin {:?} vs hand {hand:?}",
            p.thevenin()[0]
        );

        // And the converged solution closes the loop: KVL across the
        // re-closed tie within the outer tolerance.
        let r = serial_mesh().solve(&meshed, &cfg());
        assert!(r.converged(), "seed {seed}: {:?}", r.outer_status);
        let j = r.loop_currents[0];
        let gap = r.inner.v[n - 1] - r.inner.v[anchor] - z_tie * j;
        let tol = OuterConfig::default().tol_rel * 2400.0;
        assert!(gap.abs() <= 10.0 * tol, "seed {seed}: KVL gap {} across the tie", gap.abs());
    }
}

#[test]
fn backends_agree_on_random_meshed_dg_instances() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(0xD6 + seed);
        let net = tree(&mut rng);
        let v0 = net.source_voltage().abs();
        let n = net.num_buses();
        let ties = sample_ties(&net, &mut rng, 2, true);
        let bus = rng.gen_range(1usize..n);
        let gens = [PvBus {
            bus,
            p_gen: rng.gen_range(5_000.0..20_000.0),
            v_set: 0.995 * v0,
            q_min: -30_000.0,
            q_max: 30_000.0,
        }];
        let meshed = meshed_from(&net, &ties, &gens);

        let r_serial = serial_mesh().solve(&meshed, &cfg());
        if !r_serial.converged() {
            // A sampled instance may legitimately clamp and sag; the
            // property under test is only cross-backend agreement.
            continue;
        }
        let r_multi =
            MeshSolver::new(MulticoreSolver::default()).solve(&meshed, &cfg());
        let r_gpu =
            MeshSolver::new(GpuSolver::new(Device::paper_rig())).solve(&meshed, &cfg());
        for (name, other) in [("multicore", &r_multi), ("gpu", &r_gpu)] {
            assert!(other.converged(), "seed {seed}: {name} ended {:?}", other.outer_status);
            assert_eq!(other.outer_iterations, r_serial.outer_iterations, "seed {seed}: {name}");
            for (i, (a, s)) in other.inner.v.iter().zip(&r_serial.inner.v).enumerate() {
                assert!(
                    (*a - *s).abs() < 1e-9 * v0,
                    "seed {seed}: {name} bus {i}: {a} vs serial {s}"
                );
            }
        }
    }
}
