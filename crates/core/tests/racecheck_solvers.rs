//! Runs every device kernel this crate launches under the simt race
//! detector (`--features racecheck`). The detector panics on unordered
//! write-write, write-read, or atomic-vs-plain access pairs, so these
//! tests pass exactly when the kernels are race-free; correctness of the
//! results is checked elsewhere, convergence asserts here just guard
//! against vacuous runs.

#![cfg(feature = "racecheck")]

use fbs::{BackwardStrategy, BatchSolver, GpuSolver, JumpSolver, SolverConfig};
use numc::Complex;
use powergrid::gen::{balanced_binary, random_tree, GenSpec};
use primitives::ops::{AddComplex, AddF64, MaxF64};
use primitives::{reduce, scan_inclusive, segscan_inclusive};
use rng::rngs::StdRng;
use rng::Rng;
use rng::SeedableRng;
use simt::{Device, DeviceProps};

fn small_nets() -> Vec<powergrid::RadialNetwork> {
    let mut rng = StdRng::seed_from_u64(11);
    vec![
        balanced_binary(63, &GenSpec::default(), &mut rng),
        random_tree(80, 6, &GenSpec::default(), &mut rng),
    ]
}

#[test]
fn gpu_solver_is_race_free_under_all_strategies() {
    let cfg = SolverConfig::default();
    for net in small_nets() {
        for strategy in [
            BackwardStrategy::SegScan,
            BackwardStrategy::Direct,
            BackwardStrategy::AtomicScatter,
        ] {
            let mut solver =
                GpuSolver::with_strategy(Device::new(DeviceProps::paper_rig()), strategy);
            let res = solver.solve(&net, &cfg);
            assert!(res.converged(), "{strategy:?} must converge under racecheck");
        }
    }
}

#[test]
fn jump_solver_is_race_free() {
    let cfg = SolverConfig::default();
    for net in small_nets() {
        let mut solver = JumpSolver::new(Device::new(DeviceProps::paper_rig()));
        assert!(solver.solve(&net, &cfg).converged());
    }
}

#[test]
fn batch_solver_is_race_free() {
    let cfg = SolverConfig::default();
    let net = &small_nets()[0];
    let scenarios: Vec<Vec<Complex>> = (0..3)
        .map(|k| net.buses().iter().map(|b| b.load * (0.6 + 0.2 * k as f64)).collect())
        .collect();
    let mut solver = BatchSolver::new(Device::new(DeviceProps::paper_rig()));
    assert!(solver.solve(net, &scenarios, &cfg).converged());
}

#[test]
fn primitive_kernels_are_race_free() {
    let mut rng = StdRng::seed_from_u64(23);
    // Cross block-size boundaries so inter-block paths are exercised.
    for n in [1usize, 255, 256, 513, 1024] {
        let mut dev = Device::new(DeviceProps::paper_rig());
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let buf = dev.alloc_from(&xs);
        let mut out = dev.alloc::<f64>(n);
        reduce::<f64, MaxF64>(&mut dev, &buf);
        reduce::<f64, AddF64>(&mut dev, &buf);
        scan_inclusive::<f64, AddF64>(&mut dev, &buf, &mut out);

        let cs: Vec<Complex> = xs.iter().map(|&x| Complex::new(x, -x)).collect();
        let flags: Vec<u32> = (0..n).map(|i| u32::from(i % 17 == 0)).collect();
        let vals = dev.alloc_from(&cs);
        let fl = dev.alloc_from(&flags);
        let mut cout = dev.alloc::<Complex>(n);
        segscan_inclusive::<Complex, AddComplex>(&mut dev, &vals, &fl, &mut cout);
    }
}
