//! Device reduction — the classic two-elements-per-thread shared-memory
//! tree reduction, iterated until one partial remains.
//!
//! Mirrors the canonical CUDA reduction (Harris, "Optimizing Parallel
//! Reduction in CUDA"): each block loads a tile of `2·blockDim` elements,
//! folds it in shared memory over `log₂ blockDim` barrier phases, and
//! emits one partial; the host loop relaunches over the partials until a
//! single value remains, which is returned through a (time-charged)
//! device→host copy — exactly the convergence-check pattern of the
//! paper's host-side iteration loop.

use std::marker::PhantomData;

use simt::{
    BlockScope, Device, DeviceBuffer, DeviceCopy, DeviceError, GlobalMut, GlobalRef, Kernel,
    LaunchConfig,
};

use crate::ops::ScanOp;

/// Threads per reduction block.
pub const REDUCE_BLOCK: u32 = 256;
/// Elements consumed per block (two per thread).
pub const REDUCE_TILE: usize = (REDUCE_BLOCK * 2) as usize;

struct ReduceKernel<'a, T, Op> {
    input: GlobalRef<'a, T>,
    partials: GlobalMut<'a, T>,
    n: usize,
    _op: PhantomData<fn() -> Op>,
}

impl<T: DeviceCopy, Op: ScanOp<T>> Kernel for ReduceKernel<'_, T, Op> {
    fn name(&self) -> &'static str {
        "reduce"
    }

    fn block(&self, blk: &mut BlockScope) {
        let b = blk.block_dim();
        let base = blk.block_idx() * REDUCE_TILE;
        let sh = blk.shared::<T>(b);

        // Phase 1: grid load, folding the two halves of the tile.
        blk.threads(|t| {
            let i = base + t.tid();
            let j = i + b;
            let lo = if i < self.n { t.ld(&self.input, i) } else { Op::identity() };
            let hi = if j < self.n { t.ld(&self.input, j) } else { Op::identity() };
            t.flops(Op::FLOPS);
            t.sts(&sh, t.tid(), Op::combine(lo, hi));
        });

        // Tree fold: log₂(blockDim) barrier phases.
        let mut stride = b / 2;
        while stride > 0 {
            blk.threads(|t| {
                let tid = t.tid();
                if tid < stride {
                    let a = t.lds(&sh, tid);
                    let c = t.lds(&sh, tid + stride);
                    t.flops(Op::FLOPS);
                    t.sts(&sh, tid, Op::combine(a, c));
                }
            });
            stride /= 2;
        }

        // Thread 0 publishes the block partial.
        blk.threads(|t| {
            if t.tid() == 0 {
                let v = t.lds(&sh, 0);
                t.st(&self.partials, t.block_idx(), v);
            }
        });
    }
}

/// Reduces a device buffer to a single host value under operator `Op`.
///
/// Empty input returns `Op::identity()` without touching the device.
pub fn reduce<T: DeviceCopy, Op: ScanOp<T>>(dev: &mut Device, input: &DeviceBuffer<T>) -> T {
    try_reduce::<T, Op>(dev, input).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`reduce`]: surfaces injected faults and device loss as
/// [`DeviceError`] instead of panicking.
pub fn try_reduce<T: DeviceCopy, Op: ScanOp<T>>(
    dev: &mut Device,
    input: &DeviceBuffer<T>,
) -> Result<T, DeviceError> {
    if input.is_empty() {
        return Ok(Op::identity());
    }
    let mut partials = reduce_level::<T, Op>(dev, input)?;
    while partials.len() > 1 {
        partials = reduce_level::<T, Op>(dev, &partials)?;
    }
    Ok(dev.try_dtoh(&partials)?[0])
}

fn reduce_level<T: DeviceCopy, Op: ScanOp<T>>(
    dev: &mut Device,
    input: &DeviceBuffer<T>,
) -> Result<DeviceBuffer<T>, DeviceError> {
    let n = input.len();
    let grid = n.div_ceil(REDUCE_TILE).max(1);
    let mut partials = dev.try_alloc::<T>(grid)?;
    let kernel = ReduceKernel::<'_, T, Op> {
        input: input.view(),
        partials: partials.view_mut(),
        n,
        _op: PhantomData,
    };
    dev.try_launch(LaunchConfig::new(grid as u32, REDUCE_BLOCK), &kernel)?;
    Ok(partials)
}

/// Batched reduction kernel over a 2-D launch: `blockIdx.y` selects the
/// segment, the x blocks tile that segment. Same Harris tree fold as
/// [`ReduceKernel`], but every segment folds independently in one launch —
/// the per-scenario ∞-norm pattern of the tensor batch engine.
struct BatchedReduceKernel<'a, T, Op> {
    input: GlobalRef<'a, T>,
    partials: GlobalMut<'a, T>,
    seg_len: usize,
    _op: PhantomData<fn() -> Op>,
}

impl<T: DeviceCopy, Op: ScanOp<T>> Kernel for BatchedReduceKernel<'_, T, Op> {
    fn name(&self) -> &'static str {
        "reduce_batched"
    }

    fn block(&self, blk: &mut BlockScope) {
        let b = blk.block_dim();
        let seg = blk.block_idx_y();
        let grid_x = blk.grid_dim();
        let seg_base = seg * self.seg_len;
        let tile_base = blk.block_idx_x() * REDUCE_TILE;
        let sh = blk.shared::<T>(b);

        blk.threads(|t| {
            let i = tile_base + t.tid();
            let j = i + b;
            let lo = if i < self.seg_len {
                t.ld(&self.input, seg_base + i)
            } else {
                Op::identity()
            };
            let hi = if j < self.seg_len {
                t.ld(&self.input, seg_base + j)
            } else {
                Op::identity()
            };
            t.flops(Op::FLOPS);
            t.sts(&sh, t.tid(), Op::combine(lo, hi));
        });

        let mut stride = b / 2;
        while stride > 0 {
            blk.threads(|t| {
                let tid = t.tid();
                if tid < stride {
                    let a = t.lds(&sh, tid);
                    let c = t.lds(&sh, tid + stride);
                    t.flops(Op::FLOPS);
                    t.sts(&sh, tid, Op::combine(a, c));
                }
            });
            stride /= 2;
        }

        // Thread 0 publishes one partial per (segment, x-block), keeping
        // the segment-major layout so the next level reduces in place.
        blk.threads(|t| {
            if t.tid() == 0 {
                let v = t.lds(&sh, 0);
                t.st(&self.partials, seg * grid_x + t.block_idx_x(), v);
            }
        });
    }
}

/// Reduces `segments` equal-length segments of a device buffer to one host
/// value each under operator `Op` (input laid out segment-major:
/// `input[seg * seg_len + i]`).
///
/// Zero segments return an empty vector; zero-length segments return
/// `Op::identity()` per segment — neither touches the device. Panics if
/// the buffer length is not a multiple of `segments`.
pub fn reduce_batched<T: DeviceCopy, Op: ScanOp<T>>(
    dev: &mut Device,
    input: &DeviceBuffer<T>,
    segments: usize,
) -> Vec<T> {
    try_reduce_batched::<T, Op>(dev, input, segments).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`reduce_batched`]: surfaces injected faults and device loss
/// as [`DeviceError`] instead of panicking.
pub fn try_reduce_batched<T: DeviceCopy, Op: ScanOp<T>>(
    dev: &mut Device,
    input: &DeviceBuffer<T>,
    segments: usize,
) -> Result<Vec<T>, DeviceError> {
    if segments == 0 {
        return Ok(Vec::new());
    }
    assert_eq!(
        input.len() % segments,
        0,
        "batched reduce needs equal-length segments ({} elements / {segments} segments)",
        input.len()
    );
    let seg_len = input.len() / segments;
    if seg_len == 0 {
        return Ok(vec![Op::identity(); segments]);
    }
    let mut current: Option<DeviceBuffer<T>> = None;
    let mut len = seg_len;
    while len > 1 || current.is_none() {
        let grid_x = len.div_ceil(REDUCE_TILE).max(1);
        let mut partials = dev.try_alloc::<T>(grid_x * segments)?;
        {
            let input_view = match &current {
                Some(buf) => buf.view(),
                None => input.view(),
            };
            let kernel = BatchedReduceKernel::<'_, T, Op> {
                input: input_view,
                partials: partials.view_mut(),
                seg_len: len,
                _op: PhantomData,
            };
            assert!(grid_x <= u32::MAX as usize && segments <= u32::MAX as usize);
            dev.try_launch(
                LaunchConfig::grid2d(grid_x as u32, segments as u32, REDUCE_BLOCK),
                &kernel,
            )?;
        }
        current = Some(partials);
        len = grid_x;
    }
    dev.try_dtoh(current.as_ref().expect("at least one level ran"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host;
    use crate::ops::{AddComplex, AddF64, AddU32, MaxF64, MinF64};
    use numc::{c, Complex};
    use simt::DeviceProps;

    fn dev() -> Device {
        Device::with_workers(DeviceProps::paper_rig(), 2)
    }

    #[test]
    fn empty_is_identity_without_launch() {
        let mut d = dev();
        let input = d.alloc::<f64>(0);
        assert_eq!(reduce::<f64, AddF64>(&mut d, &input), 0.0);
        assert_eq!(d.timeline().breakdown().kernels, 0);
    }

    #[test]
    fn single_element() {
        let mut d = dev();
        let input = d.alloc_from(&[42.0_f64]);
        assert_eq!(reduce::<f64, AddF64>(&mut d, &input), 42.0);
    }

    #[test]
    fn sums_integers_exactly_across_sizes() {
        let mut d = dev();
        // Cover: sub-tile, exact tile, multi-block, multi-level sizes.
        for n in [1usize, 7, 511, 512, 513, 4096, 100_000, 300_000] {
            let xs: Vec<u32> = (0..n as u32).map(|i| i % 17).collect();
            let buf = d.alloc_from(&xs);
            let got = reduce::<u32, AddU32>(&mut d, &buf);
            assert_eq!(got, xs.iter().sum::<u32>(), "n = {n}");
        }
    }

    #[test]
    fn max_and_min() {
        let mut d = dev();
        let xs: Vec<f64> = (0..10_000).map(|i| ((i * 2654435761u64 as usize) % 99991) as f64).collect();
        let buf = d.alloc_from(&xs);
        assert_eq!(reduce::<f64, MaxF64>(&mut d, &buf), host::reduce::<f64, MaxF64>(&xs));
        assert_eq!(reduce::<f64, MinF64>(&mut d, &buf), host::reduce::<f64, MinF64>(&xs));
    }

    #[test]
    fn complex_sum_matches_host_within_rounding() {
        let mut d = dev();
        let xs: Vec<Complex> =
            (0..5000).map(|i| c((i % 13) as f64 * 0.5, -((i % 7) as f64))).collect();
        let buf = d.alloc_from(&xs);
        let got = reduce::<Complex, AddComplex>(&mut d, &buf);
        let want = host::reduce::<Complex, AddComplex>(&xs);
        assert!((got - want).abs() < 1e-9 * want.abs().max(1.0));
    }

    #[test]
    fn multi_level_reduction_launches_expected_kernels() {
        let mut d = dev();
        // 300k elements: level 1 = 586 partials, level 2 = 2, level 3 = 1.
        let xs = vec![1u32; 300_000];
        let buf = d.alloc_from(&xs);
        let got = reduce::<u32, AddU32>(&mut d, &buf);
        assert_eq!(got, 300_000);
        let b = d.timeline().breakdown();
        assert_eq!(b.kernels, 3);
        assert_eq!(b.dtoh_bytes, 4); // only the final scalar crosses back
    }

    #[test]
    fn batched_reduce_matches_per_segment_host_folds() {
        let mut d = dev();
        // Cover sub-tile, exact-tile, and multi-level segment lengths.
        for (segments, seg_len) in [(1usize, 7usize), (3, 511), (5, 512), (4, 513), (2, 4096)] {
            let xs: Vec<f64> = (0..segments * seg_len)
                .map(|i| (((i * 2654435761usize) % 9973) as f64) - 4986.0)
                .collect();
            let buf = d.alloc_from(&xs);
            let got = reduce_batched::<f64, crate::ops::MaxAbsF64>(&mut d, &buf, segments);
            assert_eq!(got.len(), segments);
            for (s, g) in got.iter().enumerate() {
                let want =
                    host::reduce::<f64, crate::ops::MaxAbsF64>(&xs[s * seg_len..(s + 1) * seg_len]);
                assert_eq!(*g, want, "segments={segments} seg_len={seg_len} s={s}");
            }
        }
    }

    #[test]
    fn batched_reduce_segments_are_independent() {
        let mut d = dev();
        // A NaN in segment 1 must poison only segment 1 (MaxAbsF64 is
        // NaN-propagating) — the neighbours stay exact.
        let seg_len = 700;
        let mut xs = vec![1.0f64; 3 * seg_len];
        xs[seg_len + 13] = f64::NAN;
        xs[2 * seg_len + 20] = -9.0;
        let buf = d.alloc_from(&xs);
        let got = reduce_batched::<f64, crate::ops::MaxAbsF64>(&mut d, &buf, 3);
        assert_eq!(got[0], 1.0);
        assert!(got[1].is_nan());
        assert_eq!(got[2], 9.0);
    }

    #[test]
    fn batched_reduce_single_launch_covers_all_segments() {
        let mut d = dev();
        // seg_len ≤ tile: one 2-D launch reduces every segment at once.
        let (segments, seg_len) = (64usize, 512usize);
        let xs = vec![1u32; segments * seg_len];
        let buf = d.alloc_from(&xs);
        let got = reduce_batched::<u32, AddU32>(&mut d, &buf, segments);
        assert_eq!(got, vec![seg_len as u32; segments]);
        assert_eq!(d.timeline().breakdown().kernels, 1);
    }

    #[test]
    fn batched_reduce_degenerate_shapes() {
        let mut d = dev();
        let empty = d.alloc::<f64>(0);
        assert!(reduce_batched::<f64, AddF64>(&mut d, &empty, 0).is_empty());
        assert_eq!(reduce_batched::<f64, AddF64>(&mut d, &empty, 4), vec![0.0; 4]);
        assert_eq!(d.timeline().breakdown().kernels, 0, "degenerate shapes never launch");
        let one = d.alloc_from(&[3.5f64, -2.0]);
        assert_eq!(reduce_batched::<f64, AddF64>(&mut d, &one, 2), vec![3.5, -2.0]);
    }

    #[test]
    #[should_panic(expected = "equal-length segments")]
    fn batched_reduce_rejects_ragged_input() {
        let mut d = dev();
        let buf = d.alloc_from(&[1.0f64; 10]);
        let _ = reduce_batched::<f64, AddF64>(&mut d, &buf, 3);
    }

    #[test]
    fn reduction_charges_flops() {
        let mut d = dev();
        let buf = d.alloc_from(&vec![1.0_f64; 10_000]);
        let _ = reduce::<f64, AddF64>(&mut d, &buf);
        let flops: u64 = d
            .timeline()
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                simt::EventKind::Kernel { stats, .. } => Some(stats.flops),
                _ => None,
            })
            .sum();
        assert!(flops >= 10_000, "tree reduction should charge at least n combines");
    }
}
