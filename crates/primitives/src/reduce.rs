//! Device reduction — the classic two-elements-per-thread shared-memory
//! tree reduction, iterated until one partial remains.
//!
//! Mirrors the canonical CUDA reduction (Harris, "Optimizing Parallel
//! Reduction in CUDA"): each block loads a tile of `2·blockDim` elements,
//! folds it in shared memory over `log₂ blockDim` barrier phases, and
//! emits one partial; the host loop relaunches over the partials until a
//! single value remains, which is returned through a (time-charged)
//! device→host copy — exactly the convergence-check pattern of the
//! paper's host-side iteration loop.

use std::marker::PhantomData;

use simt::{
    BlockScope, Device, DeviceBuffer, DeviceCopy, DeviceError, GlobalMut, GlobalRef, Kernel,
    LaunchConfig,
};

use crate::ops::ScanOp;

/// Threads per reduction block.
pub const REDUCE_BLOCK: u32 = 256;
/// Elements consumed per block (two per thread).
pub const REDUCE_TILE: usize = (REDUCE_BLOCK * 2) as usize;

struct ReduceKernel<'a, T, Op> {
    input: GlobalRef<'a, T>,
    partials: GlobalMut<'a, T>,
    n: usize,
    _op: PhantomData<fn() -> Op>,
}

impl<T: DeviceCopy, Op: ScanOp<T>> Kernel for ReduceKernel<'_, T, Op> {
    fn name(&self) -> &'static str {
        "reduce"
    }

    fn block(&self, blk: &mut BlockScope) {
        let b = blk.block_dim();
        let base = blk.block_idx() * REDUCE_TILE;
        let sh = blk.shared::<T>(b);

        // Phase 1: grid load, folding the two halves of the tile.
        blk.threads(|t| {
            let i = base + t.tid();
            let j = i + b;
            let lo = if i < self.n { t.ld(&self.input, i) } else { Op::identity() };
            let hi = if j < self.n { t.ld(&self.input, j) } else { Op::identity() };
            t.flops(Op::FLOPS);
            t.sts(&sh, t.tid(), Op::combine(lo, hi));
        });

        // Tree fold: log₂(blockDim) barrier phases.
        let mut stride = b / 2;
        while stride > 0 {
            blk.threads(|t| {
                let tid = t.tid();
                if tid < stride {
                    let a = t.lds(&sh, tid);
                    let c = t.lds(&sh, tid + stride);
                    t.flops(Op::FLOPS);
                    t.sts(&sh, tid, Op::combine(a, c));
                }
            });
            stride /= 2;
        }

        // Thread 0 publishes the block partial.
        blk.threads(|t| {
            if t.tid() == 0 {
                let v = t.lds(&sh, 0);
                t.st(&self.partials, t.block_idx(), v);
            }
        });
    }
}

/// Reduces a device buffer to a single host value under operator `Op`.
///
/// Empty input returns `Op::identity()` without touching the device.
pub fn reduce<T: DeviceCopy, Op: ScanOp<T>>(dev: &mut Device, input: &DeviceBuffer<T>) -> T {
    try_reduce::<T, Op>(dev, input).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`reduce`]: surfaces injected faults and device loss as
/// [`DeviceError`] instead of panicking.
pub fn try_reduce<T: DeviceCopy, Op: ScanOp<T>>(
    dev: &mut Device,
    input: &DeviceBuffer<T>,
) -> Result<T, DeviceError> {
    if input.is_empty() {
        return Ok(Op::identity());
    }
    let mut partials = reduce_level::<T, Op>(dev, input)?;
    while partials.len() > 1 {
        partials = reduce_level::<T, Op>(dev, &partials)?;
    }
    Ok(dev.try_dtoh(&partials)?[0])
}

fn reduce_level<T: DeviceCopy, Op: ScanOp<T>>(
    dev: &mut Device,
    input: &DeviceBuffer<T>,
) -> Result<DeviceBuffer<T>, DeviceError> {
    let n = input.len();
    let grid = n.div_ceil(REDUCE_TILE).max(1);
    let mut partials = dev.try_alloc::<T>(grid)?;
    let kernel = ReduceKernel::<'_, T, Op> {
        input: input.view(),
        partials: partials.view_mut(),
        n,
        _op: PhantomData,
    };
    dev.try_launch(LaunchConfig::new(grid as u32, REDUCE_BLOCK), &kernel)?;
    Ok(partials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host;
    use crate::ops::{AddComplex, AddF64, AddU32, MaxF64, MinF64};
    use numc::{c, Complex};
    use simt::DeviceProps;

    fn dev() -> Device {
        Device::with_workers(DeviceProps::paper_rig(), 2)
    }

    #[test]
    fn empty_is_identity_without_launch() {
        let mut d = dev();
        let input = d.alloc::<f64>(0);
        assert_eq!(reduce::<f64, AddF64>(&mut d, &input), 0.0);
        assert_eq!(d.timeline().breakdown().kernels, 0);
    }

    #[test]
    fn single_element() {
        let mut d = dev();
        let input = d.alloc_from(&[42.0_f64]);
        assert_eq!(reduce::<f64, AddF64>(&mut d, &input), 42.0);
    }

    #[test]
    fn sums_integers_exactly_across_sizes() {
        let mut d = dev();
        // Cover: sub-tile, exact tile, multi-block, multi-level sizes.
        for n in [1usize, 7, 511, 512, 513, 4096, 100_000, 300_000] {
            let xs: Vec<u32> = (0..n as u32).map(|i| i % 17).collect();
            let buf = d.alloc_from(&xs);
            let got = reduce::<u32, AddU32>(&mut d, &buf);
            assert_eq!(got, xs.iter().sum::<u32>(), "n = {n}");
        }
    }

    #[test]
    fn max_and_min() {
        let mut d = dev();
        let xs: Vec<f64> = (0..10_000).map(|i| ((i * 2654435761u64 as usize) % 99991) as f64).collect();
        let buf = d.alloc_from(&xs);
        assert_eq!(reduce::<f64, MaxF64>(&mut d, &buf), host::reduce::<f64, MaxF64>(&xs));
        assert_eq!(reduce::<f64, MinF64>(&mut d, &buf), host::reduce::<f64, MinF64>(&xs));
    }

    #[test]
    fn complex_sum_matches_host_within_rounding() {
        let mut d = dev();
        let xs: Vec<Complex> =
            (0..5000).map(|i| c((i % 13) as f64 * 0.5, -((i % 7) as f64))).collect();
        let buf = d.alloc_from(&xs);
        let got = reduce::<Complex, AddComplex>(&mut d, &buf);
        let want = host::reduce::<Complex, AddComplex>(&xs);
        assert!((got - want).abs() < 1e-9 * want.abs().max(1.0));
    }

    #[test]
    fn multi_level_reduction_launches_expected_kernels() {
        let mut d = dev();
        // 300k elements: level 1 = 586 partials, level 2 = 2, level 3 = 1.
        let xs = vec![1u32; 300_000];
        let buf = d.alloc_from(&xs);
        let got = reduce::<u32, AddU32>(&mut d, &buf);
        assert_eq!(got, 300_000);
        let b = d.timeline().breakdown();
        assert_eq!(b.kernels, 3);
        assert_eq!(b.dtoh_bytes, 4); // only the final scalar crosses back
    }

    #[test]
    fn reduction_charges_flops() {
        let mut d = dev();
        let buf = d.alloc_from(&vec![1.0_f64; 10_000]);
        let _ = reduce::<f64, AddF64>(&mut d, &buf);
        let flops: u64 = d
            .timeline()
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                simt::EventKind::Kernel { stats, .. } => Some(stats.flops),
                _ => None,
            })
            .sum();
        assert!(flops >= 10_000, "tree reduction should charge at least n combines");
    }
}
