//! Element-wise launch helpers and index-based movement kernels
//! (gather / scatter / fill).

use simt::{
    BlockScope, Device, DeviceBuffer, DeviceCopy, DeviceError, GlobalMut, GlobalRef, Kernel,
    LaunchConfig, ThreadCtx,
};

/// A kernel that runs `f(thread, i)` once for each `i < n`, one thread
/// per element.
struct MapKernel<F> {
    name: &'static str,
    n: usize,
    f: F,
}

impl<F: Fn(&mut ThreadCtx<'_>, usize) + Sync> Kernel for MapKernel<F> {
    fn name(&self) -> &'static str {
        self.name
    }
    fn block(&self, blk: &mut BlockScope) {
        blk.threads(|t| {
            let i = t.global_id();
            if i < self.n {
                (self.f)(t, i);
            }
        });
    }
}

/// Launches a one-thread-per-element kernel over `0..n`.
///
/// The workhorse for simple element-wise device code (the solver's
/// injection, voltage-update and convergence-delta kernels are maps).
/// `name` labels the launch on the timeline.
pub fn launch_map<F>(dev: &mut Device, n: usize, name: &'static str, f: F)
where
    F: Fn(&mut ThreadCtx<'_>, usize) + Sync,
{
    try_launch_map(dev, n, name, f).unwrap_or_else(|e| panic!("{e}"));
}

/// Fallible [`launch_map`]: surfaces injected faults and device loss as
/// [`DeviceError`] instead of panicking.
pub fn try_launch_map<F>(
    dev: &mut Device,
    n: usize,
    name: &'static str,
    f: F,
) -> Result<(), DeviceError>
where
    F: Fn(&mut ThreadCtx<'_>, usize) + Sync,
{
    dev.try_launch(LaunchConfig::for_elems(n), &MapKernel { name, n, f })
}

/// Like [`launch_map`] with an explicit block size.
pub fn launch_map_with_block<F>(dev: &mut Device, n: usize, block: u32, name: &'static str, f: F)
where
    F: Fn(&mut ThreadCtx<'_>, usize) + Sync,
{
    dev.launch(LaunchConfig::for_elems_with_block(n, block), &MapKernel { name, n, f });
}

/// Device gather: `out[i] = src[idx[i]]` for `i < idx.len()`.
///
/// # Panics
/// Panics (device fault) if any index is out of bounds, or if `out` is
/// shorter than `idx`.
pub fn gather<T: DeviceCopy>(
    dev: &mut Device,
    src: &DeviceBuffer<T>,
    idx: &DeviceBuffer<u32>,
    out: &mut DeviceBuffer<T>,
) {
    assert!(out.len() >= idx.len(), "gather: output shorter than index array");
    let src_v: GlobalRef<'_, T> = src.view();
    let idx_v = idx.view();
    let out_v: GlobalMut<'_, T> = out.view_mut();
    launch_map(dev, idx_v.len(), "gather", move |t, i| {
        let j = t.ld(&idx_v, i) as usize;
        let v = t.ld(&src_v, j);
        t.st(&out_v, i, v);
    });
}

/// Device scatter: `out[idx[i]] = src[i]` for `i < src.len()`.
///
/// Duplicate indices are a data race (checked under the `racecheck`
/// feature), exactly as on hardware.
pub fn scatter<T: DeviceCopy>(
    dev: &mut Device,
    src: &DeviceBuffer<T>,
    idx: &DeviceBuffer<u32>,
    out: &mut DeviceBuffer<T>,
) {
    assert_eq!(src.len(), idx.len(), "scatter: src/idx length mismatch");
    let src_v = src.view();
    let idx_v = idx.view();
    let out_v = out.view_mut();
    launch_map(dev, src_v.len(), "scatter", move |t, i| {
        let j = t.ld(&idx_v, i) as usize;
        let v = t.ld(&src_v, i);
        t.st(&out_v, j, v);
    });
}

/// Device fill: `buf[i] = value` for all elements.
pub fn fill<T: DeviceCopy>(dev: &mut Device, buf: &mut DeviceBuffer<T>, value: T) {
    try_fill(dev, buf, value).unwrap_or_else(|e| panic!("{e}"));
}

/// Fallible [`fill`].
pub fn try_fill<T: DeviceCopy>(
    dev: &mut Device,
    buf: &mut DeviceBuffer<T>,
    value: T,
) -> Result<(), DeviceError> {
    let out_v = buf.view_mut();
    try_launch_map(dev, out_v.len(), "fill", move |t, i| {
        t.st(&out_v, i, value);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt::DeviceProps;

    fn dev() -> Device {
        Device::with_workers(DeviceProps::paper_rig(), 2)
    }

    #[test]
    fn map_squares_elements() {
        let mut d = dev();
        let input = d.alloc_from(&(0..1000u32).collect::<Vec<_>>());
        let mut out = d.alloc::<u32>(1000);
        let in_v = input.view();
        let out_v = out.view_mut();
        launch_map(&mut d, 1000, "square", move |t, i| {
            let v = t.ld(&in_v, i);
            t.flops(1);
            t.st(&out_v, i, v * v);
        });
        let host = d.dtoh(&out);
        assert!(host.iter().enumerate().all(|(i, &v)| v == (i * i) as u32));
        // Timeline saw the named kernel.
        assert!(d.timeline().breakdown().per_kernel_us.contains_key("square"));
    }

    #[test]
    fn map_zero_elements_is_noop_launch() {
        let mut d = dev();
        launch_map(&mut d, 0, "empty", |_t, _i| panic!("must not run"));
        assert_eq!(d.timeline().breakdown().kernels, 1);
    }

    #[test]
    fn gather_reorders() {
        let mut d = dev();
        let src = d.alloc_from(&[10.0_f64, 20.0, 30.0, 40.0]);
        let idx = d.alloc_from(&[3u32, 0, 2, 1]);
        let mut out = d.alloc::<f64>(4);
        gather(&mut d, &src, &idx, &mut out);
        assert_eq!(d.dtoh(&out), vec![40.0, 10.0, 30.0, 20.0]);
    }

    #[test]
    fn scatter_inverts_gather_for_permutations() {
        let mut d = dev();
        let perm = [3u32, 0, 2, 1];
        let src = d.alloc_from(&[1.0_f64, 2.0, 3.0, 4.0]);
        let idx = d.alloc_from(&perm);
        let mut tmp = d.alloc::<f64>(4);
        gather(&mut d, &src, &idx, &mut tmp);
        let mut back = d.alloc::<f64>(4);
        scatter(&mut d, &tmp, &idx, &mut back);
        assert_eq!(d.dtoh(&back), d.dtoh(&src));
    }

    #[test]
    fn fill_sets_everything() {
        let mut d = dev();
        let mut buf = d.alloc::<f64>(777);
        fill(&mut d, &mut buf, 2.5);
        assert!(d.dtoh(&buf).iter().all(|&v| v == 2.5));
    }

    #[test]
    #[should_panic(expected = "device fault")]
    fn gather_with_bad_index_faults() {
        let mut d = dev();
        let src = d.alloc_from(&[1.0_f64]);
        let idx = d.alloc_from(&[5u32]);
        let mut out = d.alloc::<f64>(1);
        gather(&mut d, &src, &idx, &mut out);
    }

    #[test]
    #[should_panic(expected = "output shorter")]
    fn gather_output_too_short_is_rejected_on_host() {
        let mut d = dev();
        let src = d.alloc_from(&[1.0_f64; 4]);
        let idx = d.alloc_from(&[0u32; 4]);
        let mut out = d.alloc::<f64>(2);
        gather(&mut d, &src, &idx, &mut out);
    }
}
