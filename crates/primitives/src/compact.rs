//! Stream compaction: scan + conditional scatter.
//!
//! Not used by the solver's inner loop, but part of the standard
//! primitive set the paper's method section draws from, and exercised by
//! the workspace's topology tooling (filtering level frontiers).

use simt::{Device, DeviceBuffer, DeviceCopy};

use crate::map::launch_map;
use crate::ops::AddU32;
use crate::reduce::reduce;
use crate::scan::scan_exclusive;

/// Keeps `input[i]` where `keep[i] != 0`, preserving order. Returns the
/// compacted device buffer (its length is the number of kept elements).
///
/// Classic three-step formulation: exclusive scan of the keep flags gives
/// each survivor its output slot; a reduction gives the output size; a
/// conditional scatter moves the survivors.
pub fn compact<T: DeviceCopy>(
    dev: &mut Device,
    input: &DeviceBuffer<T>,
    keep: &DeviceBuffer<u32>,
) -> DeviceBuffer<T> {
    assert_eq!(input.len(), keep.len(), "compact: input/keep length mismatch");
    let n = input.len();
    if n == 0 {
        return dev.alloc::<T>(0);
    }

    // Normalise flags to 0/1 so the scan counts survivors.
    let mut ones = dev.alloc::<u32>(n);
    {
        let keep_v = keep.view();
        let ones_v = ones.view_mut();
        launch_map(dev, n, "compact_normalize", move |t, i| {
            let k = t.ld(&keep_v, i);
            t.st(&ones_v, i, u32::from(k != 0));
        });
    }

    let total = reduce::<u32, AddU32>(dev, &ones) as usize;
    let mut slots = dev.alloc::<u32>(n);
    scan_exclusive::<u32, AddU32>(dev, &ones, &mut slots);

    let mut out = dev.alloc::<T>(total);
    {
        let in_v = input.view();
        let ones_v = ones.view();
        let slot_v = slots.view();
        let out_v = out.view_mut();
        launch_map(dev, n, "compact_scatter", move |t, i| {
            if t.ld(&ones_v, i) != 0 {
                let slot = t.ld(&slot_v, i) as usize;
                let v = t.ld(&in_v, i);
                t.st(&out_v, slot, v);
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host;
    use simt::DeviceProps;

    fn dev() -> Device {
        Device::with_workers(DeviceProps::paper_rig(), 2)
    }

    #[test]
    fn compacts_small_case() {
        let mut d = dev();
        let input = d.alloc_from(&[10u32, 20, 30, 40, 50]);
        let keep = d.alloc_from(&[1u32, 0, 7, 0, 1]); // nonzero = keep
        let out = compact(&mut d, &input, &keep);
        assert_eq!(d.dtoh(&out), vec![10, 30, 50]);
    }

    #[test]
    fn empty_and_none_kept() {
        let mut d = dev();
        let input = d.alloc::<u32>(0);
        let keep = d.alloc::<u32>(0);
        assert_eq!(compact(&mut d, &input, &keep).len(), 0);

        let input = d.alloc_from(&[1u32, 2, 3]);
        let keep = d.alloc_from(&[0u32, 0, 0]);
        assert_eq!(compact(&mut d, &input, &keep).len(), 0);
    }

    #[test]
    fn all_kept_is_identity() {
        let mut d = dev();
        let xs: Vec<u32> = (0..3000).collect();
        let input = d.alloc_from(&xs);
        let keep = d.alloc_from(&vec![1u32; 3000]);
        let out = compact(&mut d, &input, &keep);
        assert_eq!(d.dtoh(&out), xs);
    }

    #[test]
    fn matches_host_reference_across_block_boundaries() {
        let mut d = dev();
        let n = 10_000;
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let flags: Vec<u32> = (0..n).map(|i| u32::from(i % 3 == 1)).collect();
        let input = d.alloc_from(&xs);
        let keep = d.alloc_from(&flags);
        let out = compact(&mut d, &input, &keep);
        assert_eq!(d.dtoh(&out), host::compact(&xs, &flags));
    }
}
