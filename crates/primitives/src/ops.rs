//! Associative operators for scans and reductions.
//!
//! Operators are zero-sized marker types implementing [`ScanOp`]; kernels
//! are generic over them, so each (element, operator) pair monomorphises
//! to straight-line code — the Rust analog of the templated CUB/Thrust
//! primitives the paper's CUDA implementation would use.

use numc::Complex;
use simt::DeviceCopy;

/// An associative binary operator with identity, over device-resident
/// elements.
///
/// # Contract
///
/// `combine` must be associative and `identity()` must be its neutral
/// element. Commutativity is *not* required (scans preserve order), but
/// floating-point addition is only approximately associative: device and
/// host results may differ by rounding, which tests compare with
/// tolerances.
pub trait ScanOp<T: DeviceCopy>: 'static {
    /// Neutral element of [`ScanOp::combine`].
    fn identity() -> T;
    /// The associative combination.
    fn combine(a: T, b: T) -> T;
    /// Modeled flop cost of one `combine` (for the timing model).
    const FLOPS: u64;
    /// Name fragment used in kernel labels.
    const NAME: &'static str;
}

/// `f64` addition.
pub struct AddF64;
impl ScanOp<f64> for AddF64 {
    fn identity() -> f64 {
        0.0
    }
    fn combine(a: f64, b: f64) -> f64 {
        a + b
    }
    const FLOPS: u64 = 1;
    const NAME: &'static str = "add_f64";
}

/// `u32` addition (index arithmetic, compaction).
pub struct AddU32;
impl ScanOp<u32> for AddU32 {
    fn identity() -> u32 {
        0
    }
    fn combine(a: u32, b: u32) -> u32 {
        a + b
    }
    const FLOPS: u64 = 1;
    const NAME: &'static str = "add_u32";
}

/// Complex addition — the operator of the paper's backward sweep
/// (summing child branch currents).
pub struct AddComplex;
impl ScanOp<Complex> for AddComplex {
    fn identity() -> Complex {
        Complex::ZERO
    }
    fn combine(a: Complex, b: Complex) -> Complex {
        a + b
    }
    const FLOPS: u64 = Complex::ADD_FLOPS;
    const NAME: &'static str = "add_c64";
}

/// `f64` maximum — the operator of the convergence check (∞-norm of the
/// voltage update).
///
/// NaN *propagates*: if either operand is NaN the result is NaN. Rust's
/// `f64::max` silently drops NaN operands, which would let a solver whose
/// residual went NaN report a small (finite) ∞-norm and claim
/// convergence; an absorbing NaN keeps corrupt data visible all the way
/// up the reduction tree. The operator stays associative because NaN is
/// absorbing under this definition.
pub struct MaxF64;
impl ScanOp<f64> for MaxF64 {
    fn identity() -> f64 {
        f64::NEG_INFINITY
    }
    fn combine(a: f64, b: f64) -> f64 {
        if a.is_nan() {
            a
        } else if b.is_nan() {
            b
        } else {
            a.max(b)
        }
    }
    const FLOPS: u64 = 1;
    const NAME: &'static str = "max_f64";
}

/// `f64` minimum (voltage-profile reporting). NaN propagates, as in
/// [`MaxF64`].
pub struct MinF64;
impl ScanOp<f64> for MinF64 {
    fn identity() -> f64 {
        f64::INFINITY
    }
    fn combine(a: f64, b: f64) -> f64 {
        if a.is_nan() {
            a
        } else if b.is_nan() {
            b
        } else {
            a.min(b)
        }
    }
    const FLOPS: u64 = 1;
    const NAME: &'static str = "min_f64";
}

/// ∞-norm accumulator: NaN-propagating maximum of absolute values — the
/// operator of every solver's convergence reduction.
///
/// Inputs are the per-bus `|ΔV|` magnitudes (non-negative by
/// construction, or NaN when an update went `Inf − Inf`/`0/0`). On that
/// domain `0.0` is a true identity and the operator is associative:
/// results are non-negative, so the inner `abs` is idempotent, and NaN is
/// absorbing. For *signed* inputs the identity law would not hold
/// (`combine(x, 0) = |x|`), so keep this operator on magnitudes.
pub struct MaxAbsF64;
impl ScanOp<f64> for MaxAbsF64 {
    fn identity() -> f64 {
        0.0
    }
    fn combine(a: f64, b: f64) -> f64 {
        if a.is_nan() {
            a
        } else if b.is_nan() {
            b
        } else {
            a.abs().max(b.abs())
        }
    }
    const FLOPS: u64 = 1;
    const NAME: &'static str = "max_abs_f64";
}

/// The (flag, value) pair a segmented scan operates on, with the standard
/// lifted operator: a head flag resets accumulation at its element.
///
/// `(f1,v1) ⊗ (f2,v2) = (f1∨f2, if f2 { v2 } else { v1 ⊕ v2 })`
///
/// The lifted operator is associative whenever `⊕` is, which is what lets
/// segmented scan reuse unsegmented scan networks (Sengupta et al., 2007).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SegPair<T> {
    /// OR of head flags seen so far.
    pub flag: u32,
    /// Accumulated value.
    pub value: T,
}

/// Combines two segmented-scan pairs under operator `Op`.
#[inline]
pub fn seg_combine<T: DeviceCopy, Op: ScanOp<T>>(a: SegPair<T>, b: SegPair<T>) -> SegPair<T> {
    SegPair {
        flag: a.flag | b.flag,
        value: if b.flag != 0 { b.value } else { Op::combine(a.value, b.value) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numc::c;

    #[test]
    fn identities_are_neutral() {
        assert_eq!(AddF64::combine(AddF64::identity(), 3.5), 3.5);
        assert_eq!(AddU32::combine(7, AddU32::identity()), 7);
        assert_eq!(AddComplex::combine(AddComplex::identity(), c(1.0, 2.0)), c(1.0, 2.0));
        assert_eq!(MaxF64::combine(MaxF64::identity(), -1e300), -1e300);
        assert_eq!(MinF64::combine(MinF64::identity(), 1e300), 1e300);
    }

    #[test]
    fn max_min_behave() {
        assert_eq!(MaxF64::combine(2.0, 3.0), 3.0);
        assert_eq!(MinF64::combine(2.0, 3.0), 2.0);
    }

    #[test]
    fn max_min_propagate_nan_from_either_side() {
        assert!(MaxF64::combine(f64::NAN, 3.0).is_nan());
        assert!(MaxF64::combine(3.0, f64::NAN).is_nan());
        assert!(MaxF64::combine(f64::NAN, f64::NEG_INFINITY).is_nan());
        assert!(MinF64::combine(f64::NAN, 3.0).is_nan());
        assert!(MinF64::combine(3.0, f64::NAN).is_nan());
        assert!(MinF64::combine(f64::INFINITY, f64::NAN).is_nan());
    }

    #[test]
    fn max_min_keep_infinities() {
        assert_eq!(MaxF64::combine(f64::INFINITY, 1.0), f64::INFINITY);
        assert_eq!(MaxF64::combine(f64::NEG_INFINITY, 1.0), 1.0);
        assert_eq!(MinF64::combine(f64::NEG_INFINITY, 1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn max_abs_is_an_inf_norm_on_magnitudes() {
        assert_eq!(MaxAbsF64::combine(MaxAbsF64::identity(), 3.0), 3.0);
        assert_eq!(MaxAbsF64::combine(2.0, 5.0), 5.0);
        assert_eq!(MaxAbsF64::combine(-7.0, 2.0), 7.0, "signed inputs fold to magnitudes");
        assert!(MaxAbsF64::combine(f64::NAN, 0.0).is_nan());
        assert!(MaxAbsF64::combine(0.0, f64::NAN).is_nan());
        assert_eq!(MaxAbsF64::combine(f64::INFINITY, 1.0), f64::INFINITY);
    }

    #[test]
    fn nan_propagating_max_stays_associative_on_samples() {
        let vals = [1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -2.0, 0.0];
        let eq = |a: f64, b: f64| (a.is_nan() && b.is_nan()) || a == b;
        for &a in &vals {
            for &b in &vals {
                for &c in &vals {
                    let left = MaxF64::combine(MaxF64::combine(a, b), c);
                    let right = MaxF64::combine(a, MaxF64::combine(b, c));
                    assert!(eq(left, right), "max: ({a}, {b}, {c})");
                    let left = MaxAbsF64::combine(MaxAbsF64::combine(a.abs(), b.abs()), c.abs());
                    let right = MaxAbsF64::combine(a.abs(), MaxAbsF64::combine(b.abs(), c.abs()));
                    assert!(eq(left, right), "max_abs: ({a}, {b}, {c})");
                }
            }
        }
    }

    #[test]
    fn seg_combine_no_flag_accumulates() {
        let a = SegPair { flag: 0, value: 2.0 };
        let b = SegPair { flag: 0, value: 3.0 };
        assert_eq!(seg_combine::<f64, AddF64>(a, b), SegPair { flag: 0, value: 5.0 });
    }

    #[test]
    fn seg_combine_right_flag_resets() {
        let a = SegPair { flag: 0, value: 100.0 };
        let b = SegPair { flag: 1, value: 3.0 };
        assert_eq!(seg_combine::<f64, AddF64>(a, b), SegPair { flag: 1, value: 3.0 });
    }

    #[test]
    fn seg_combine_left_flag_propagates() {
        let a = SegPair { flag: 1, value: 4.0 };
        let b = SegPair { flag: 0, value: 3.0 };
        assert_eq!(seg_combine::<f64, AddF64>(a, b), SegPair { flag: 1, value: 7.0 });
    }

    #[test]
    fn seg_combine_is_associative_on_samples() {
        // Exhaustive over flag patterns with integer-valued f64 (exact).
        let vals = [1.0, 2.0, 4.0];
        for fa in [0u32, 1] {
            for fb in [0u32, 1] {
                for fc in [0u32, 1] {
                    let a = SegPair { flag: fa, value: vals[0] };
                    let b = SegPair { flag: fb, value: vals[1] };
                    let c_ = SegPair { flag: fc, value: vals[2] };
                    let left = seg_combine::<f64, AddF64>(seg_combine::<f64, AddF64>(a, b), c_);
                    let right = seg_combine::<f64, AddF64>(a, seg_combine::<f64, AddF64>(b, c_));
                    assert_eq!(left, right, "flags {fa}{fb}{fc}");
                }
            }
        }
    }
}

/// Per-phase complex addition over three-phase triples — the backward
/// sweep operator of the unbalanced solver.
pub struct AddCVec3;
impl ScanOp<numc::CVec3> for AddCVec3 {
    fn identity() -> numc::CVec3 {
        numc::CVec3::ZERO
    }
    fn combine(a: numc::CVec3, b: numc::CVec3) -> numc::CVec3 {
        a + b
    }
    const FLOPS: u64 = numc::CVec3::ADD_FLOPS;
    const NAME: &'static str = "add_cv3";
}

#[cfg(test)]
mod cvec3_tests {
    use super::*;
    use numc::{c, CVec3};

    #[test]
    fn add_cvec3_identity_and_combine() {
        let x = CVec3::new(c(1.0, 2.0), c(-1.0, 0.0), c(0.5, 0.5));
        assert_eq!(AddCVec3::combine(AddCVec3::identity(), x), x);
        let y = CVec3::splat(c(1.0, 1.0));
        let z = AddCVec3::combine(x, y);
        assert_eq!(z.a, c(2.0, 3.0));
        assert_eq!(z.b, c(0.0, 1.0));
    }
}
