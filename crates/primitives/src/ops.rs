//! Associative operators for scans and reductions.
//!
//! Operators are zero-sized marker types implementing [`ScanOp`]; kernels
//! are generic over them, so each (element, operator) pair monomorphises
//! to straight-line code — the Rust analog of the templated CUB/Thrust
//! primitives the paper's CUDA implementation would use.

use numc::Complex;
use simt::DeviceCopy;

/// An associative binary operator with identity, over device-resident
/// elements.
///
/// # Contract
///
/// `combine` must be associative and `identity()` must be its neutral
/// element. Commutativity is *not* required (scans preserve order), but
/// floating-point addition is only approximately associative: device and
/// host results may differ by rounding, which tests compare with
/// tolerances.
pub trait ScanOp<T: DeviceCopy>: 'static {
    /// Neutral element of [`ScanOp::combine`].
    fn identity() -> T;
    /// The associative combination.
    fn combine(a: T, b: T) -> T;
    /// Modeled flop cost of one `combine` (for the timing model).
    const FLOPS: u64;
    /// Name fragment used in kernel labels.
    const NAME: &'static str;
}

/// `f64` addition.
pub struct AddF64;
impl ScanOp<f64> for AddF64 {
    fn identity() -> f64 {
        0.0
    }
    fn combine(a: f64, b: f64) -> f64 {
        a + b
    }
    const FLOPS: u64 = 1;
    const NAME: &'static str = "add_f64";
}

/// `u32` addition (index arithmetic, compaction).
pub struct AddU32;
impl ScanOp<u32> for AddU32 {
    fn identity() -> u32 {
        0
    }
    fn combine(a: u32, b: u32) -> u32 {
        a + b
    }
    const FLOPS: u64 = 1;
    const NAME: &'static str = "add_u32";
}

/// Complex addition — the operator of the paper's backward sweep
/// (summing child branch currents).
pub struct AddComplex;
impl ScanOp<Complex> for AddComplex {
    fn identity() -> Complex {
        Complex::ZERO
    }
    fn combine(a: Complex, b: Complex) -> Complex {
        a + b
    }
    const FLOPS: u64 = Complex::ADD_FLOPS;
    const NAME: &'static str = "add_c64";
}

/// `f64` maximum — the operator of the convergence check (∞-norm of the
/// voltage update).
pub struct MaxF64;
impl ScanOp<f64> for MaxF64 {
    fn identity() -> f64 {
        f64::NEG_INFINITY
    }
    fn combine(a: f64, b: f64) -> f64 {
        a.max(b)
    }
    const FLOPS: u64 = 1;
    const NAME: &'static str = "max_f64";
}

/// `f64` minimum (voltage-profile reporting).
pub struct MinF64;
impl ScanOp<f64> for MinF64 {
    fn identity() -> f64 {
        f64::INFINITY
    }
    fn combine(a: f64, b: f64) -> f64 {
        a.min(b)
    }
    const FLOPS: u64 = 1;
    const NAME: &'static str = "min_f64";
}

/// The (flag, value) pair a segmented scan operates on, with the standard
/// lifted operator: a head flag resets accumulation at its element.
///
/// `(f1,v1) ⊗ (f2,v2) = (f1∨f2, if f2 { v2 } else { v1 ⊕ v2 })`
///
/// The lifted operator is associative whenever `⊕` is, which is what lets
/// segmented scan reuse unsegmented scan networks (Sengupta et al., 2007).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SegPair<T> {
    /// OR of head flags seen so far.
    pub flag: u32,
    /// Accumulated value.
    pub value: T,
}

/// Combines two segmented-scan pairs under operator `Op`.
#[inline]
pub fn seg_combine<T: DeviceCopy, Op: ScanOp<T>>(a: SegPair<T>, b: SegPair<T>) -> SegPair<T> {
    SegPair {
        flag: a.flag | b.flag,
        value: if b.flag != 0 { b.value } else { Op::combine(a.value, b.value) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numc::c;

    #[test]
    fn identities_are_neutral() {
        assert_eq!(AddF64::combine(AddF64::identity(), 3.5), 3.5);
        assert_eq!(AddU32::combine(7, AddU32::identity()), 7);
        assert_eq!(AddComplex::combine(AddComplex::identity(), c(1.0, 2.0)), c(1.0, 2.0));
        assert_eq!(MaxF64::combine(MaxF64::identity(), -1e300), -1e300);
        assert_eq!(MinF64::combine(MinF64::identity(), 1e300), 1e300);
    }

    #[test]
    fn max_min_behave() {
        assert_eq!(MaxF64::combine(2.0, 3.0), 3.0);
        assert_eq!(MinF64::combine(2.0, 3.0), 2.0);
    }

    #[test]
    fn seg_combine_no_flag_accumulates() {
        let a = SegPair { flag: 0, value: 2.0 };
        let b = SegPair { flag: 0, value: 3.0 };
        assert_eq!(seg_combine::<f64, AddF64>(a, b), SegPair { flag: 0, value: 5.0 });
    }

    #[test]
    fn seg_combine_right_flag_resets() {
        let a = SegPair { flag: 0, value: 100.0 };
        let b = SegPair { flag: 1, value: 3.0 };
        assert_eq!(seg_combine::<f64, AddF64>(a, b), SegPair { flag: 1, value: 3.0 });
    }

    #[test]
    fn seg_combine_left_flag_propagates() {
        let a = SegPair { flag: 1, value: 4.0 };
        let b = SegPair { flag: 0, value: 3.0 };
        assert_eq!(seg_combine::<f64, AddF64>(a, b), SegPair { flag: 1, value: 7.0 });
    }

    #[test]
    fn seg_combine_is_associative_on_samples() {
        // Exhaustive over flag patterns with integer-valued f64 (exact).
        let vals = [1.0, 2.0, 4.0];
        for fa in [0u32, 1] {
            for fb in [0u32, 1] {
                for fc in [0u32, 1] {
                    let a = SegPair { flag: fa, value: vals[0] };
                    let b = SegPair { flag: fb, value: vals[1] };
                    let c_ = SegPair { flag: fc, value: vals[2] };
                    let left = seg_combine::<f64, AddF64>(seg_combine::<f64, AddF64>(a, b), c_);
                    let right = seg_combine::<f64, AddF64>(a, seg_combine::<f64, AddF64>(b, c_));
                    assert_eq!(left, right, "flags {fa}{fb}{fc}");
                }
            }
        }
    }
}

/// Per-phase complex addition over three-phase triples — the backward
/// sweep operator of the unbalanced solver.
pub struct AddCVec3;
impl ScanOp<numc::CVec3> for AddCVec3 {
    fn identity() -> numc::CVec3 {
        numc::CVec3::ZERO
    }
    fn combine(a: numc::CVec3, b: numc::CVec3) -> numc::CVec3 {
        a + b
    }
    const FLOPS: u64 = numc::CVec3::ADD_FLOPS;
    const NAME: &'static str = "add_cv3";
}

#[cfg(test)]
mod cvec3_tests {
    use super::*;
    use numc::{c, CVec3};

    #[test]
    fn add_cvec3_identity_and_combine() {
        let x = CVec3::new(c(1.0, 2.0), c(-1.0, 0.0), c(0.5, 0.5));
        assert_eq!(AddCVec3::combine(AddCVec3::identity(), x), x);
        let y = CVec3::splat(c(1.0, 1.0));
        let z = AddCVec3::combine(x, y);
        assert_eq!(z.a, c(2.0, 3.0));
        assert_eq!(z.b, c(0.0, 1.0));
    }
}
