//! Device prefix scan — the work-efficient Blelloch scan.
//!
//! Structure (Blelloch 1990; the GPU formulation of Harris/Sengupta/Owens
//! in *GPU Gems 3*, ch. 39):
//!
//! 1. `scan_blocks` — every block scans a tile of `2·blockDim` elements in
//!    shared memory: an up-sweep (reduce) of `log₂ tile` phases, root
//!    replacement with the identity, and a down-sweep of `log₂ tile`
//!    phases, producing the tile's *exclusive* scan plus one block sum.
//! 2. The block sums are scanned recursively (they are just another,
//!    `tile`-times-smaller, scan problem).
//! 3. `uniform_add` — each element is offset by its block's scanned sum.
//!
//! Everything stays on the device; no intermediate crosses the PCIe model.

use std::marker::PhantomData;

use simt::{
    BlockScope, Device, DeviceBuffer, DeviceCopy, DeviceError, GlobalMut, GlobalRef, Kernel,
    LaunchConfig,
};

use crate::map::{launch_map, try_launch_map};
use crate::ops::ScanOp;

/// Threads per scan block.
pub const SCAN_BLOCK: u32 = 256;
/// Elements scanned per block (two per thread).
pub const SCAN_TILE: usize = (SCAN_BLOCK * 2) as usize;

struct ScanBlocksKernel<'a, T, Op> {
    input: GlobalRef<'a, T>,
    output: GlobalMut<'a, T>,
    sums: GlobalMut<'a, T>,
    n: usize,
    _op: PhantomData<fn() -> Op>,
}

impl<T: DeviceCopy, Op: ScanOp<T>> Kernel for ScanBlocksKernel<'_, T, Op> {
    fn name(&self) -> &'static str {
        "scan_blocks"
    }

    fn block(&self, blk: &mut BlockScope) {
        let b = blk.block_dim();
        let tile = 2 * b;
        let base = blk.block_idx() * tile;
        let sh = blk.shared::<T>(tile);

        // Load two elements per thread, identity-padding the tail.
        blk.threads(|t| {
            let tid = t.tid();
            for k in [tid, tid + b] {
                let i = base + k;
                let v = if i < self.n { t.ld(&self.input, i) } else { Op::identity() };
                t.sts(&sh, k, v);
            }
        });

        // Up-sweep (reduce) phases.
        let mut offset = 1usize;
        while offset < tile {
            let active = tile / (2 * offset);
            blk.threads(|t| {
                let tid = t.tid();
                if tid < active {
                    let i = offset * (2 * tid + 1) - 1;
                    let j = offset * (2 * tid + 2) - 1;
                    let a = t.lds(&sh, i);
                    let c = t.lds(&sh, j);
                    t.flops(Op::FLOPS);
                    t.sts(&sh, j, Op::combine(a, c));
                }
            });
            offset *= 2;
        }

        // Publish the block total, then clear the root.
        blk.threads(|t| {
            if t.tid() == 0 {
                let total = t.lds(&sh, tile - 1);
                t.st(&self.sums, t.block_idx(), total);
                t.sts(&sh, tile - 1, Op::identity());
            }
        });

        // Down-sweep phases.
        let mut offset = tile / 2;
        while offset > 0 {
            let active = tile / (2 * offset);
            blk.threads(|t| {
                let tid = t.tid();
                if tid < active {
                    let i = offset * (2 * tid + 1) - 1;
                    let j = offset * (2 * tid + 2) - 1;
                    let left = t.lds(&sh, i);
                    let right = t.lds(&sh, j);
                    t.flops(Op::FLOPS);
                    t.sts(&sh, i, right);
                    t.sts(&sh, j, Op::combine(left, right));
                }
            });
            offset /= 2;
        }

        // Store the scanned tile.
        blk.threads(|t| {
            let tid = t.tid();
            for k in [tid, tid + b] {
                let i = base + k;
                if i < self.n {
                    let v = t.lds(&sh, k);
                    t.st(&self.output, i, v);
                }
            }
        });
    }
}

/// Device exclusive scan: `out[i] = x[0] ⊕ … ⊕ x[i−1]`, `out[0] = id`.
///
/// `output` must be at least as long as `input`.
pub fn scan_exclusive<T: DeviceCopy, Op: ScanOp<T>>(
    dev: &mut Device,
    input: &DeviceBuffer<T>,
    output: &mut DeviceBuffer<T>,
) {
    try_scan_exclusive::<T, Op>(dev, input, output).unwrap_or_else(|e| panic!("{e}"));
}

/// Fallible [`scan_exclusive`]: surfaces injected faults and device loss
/// as [`DeviceError`] instead of panicking.
pub fn try_scan_exclusive<T: DeviceCopy, Op: ScanOp<T>>(
    dev: &mut Device,
    input: &DeviceBuffer<T>,
    output: &mut DeviceBuffer<T>,
) -> Result<(), DeviceError> {
    let n = input.len();
    assert!(output.len() >= n, "scan: output shorter than input");
    if n == 0 {
        return Ok(());
    }
    let grid = n.div_ceil(SCAN_TILE).max(1);
    let mut sums = dev.try_alloc::<T>(grid)?;
    let kernel = ScanBlocksKernel::<'_, T, Op> {
        input: input.view(),
        output: output.view_mut(),
        sums: sums.view_mut(),
        n,
        _op: PhantomData,
    };
    dev.try_launch(LaunchConfig::new(grid as u32, SCAN_BLOCK), &kernel)?;

    if grid > 1 {
        // Recursively scan the block sums, then apply the offsets.
        let mut scanned_sums = dev.try_alloc::<T>(grid)?;
        try_scan_exclusive::<T, Op>(dev, &sums, &mut scanned_sums)?;
        let offs = scanned_sums.view();
        let out_v = output.view_mut();
        try_launch_map(dev, n, "uniform_add", move |t, i| {
            let blk = i / SCAN_TILE;
            let off = t.ld(&offs, blk);
            let v = t.ld_mut(&out_v, i);
            t.flops(Op::FLOPS);
            t.st(&out_v, i, Op::combine(off, v));
        })?;
    }
    Ok(())
}

/// Device inclusive scan: `out[i] = x[0] ⊕ … ⊕ x[i]`.
///
/// Implemented as the exclusive scan combined with the input element-wise
/// (one extra map), keeping a single scan network for both flavours.
pub fn scan_inclusive<T: DeviceCopy, Op: ScanOp<T>>(
    dev: &mut Device,
    input: &DeviceBuffer<T>,
    output: &mut DeviceBuffer<T>,
) {
    let n = input.len();
    scan_exclusive::<T, Op>(dev, input, output);
    if n == 0 {
        return;
    }
    let in_v = input.view();
    let out_v = output.view_mut();
    launch_map(dev, n, "inclusive_fixup", move |t, i| {
        let e = t.ld_mut(&out_v, i);
        let x = t.ld(&in_v, i);
        t.flops(Op::FLOPS);
        t.st(&out_v, i, Op::combine(e, x));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host;
    use crate::ops::{AddF64, AddU32};
    use simt::DeviceProps;

    fn dev() -> Device {
        Device::with_workers(DeviceProps::paper_rig(), 2)
    }

    fn device_scan_exclusive_u32(xs: &[u32]) -> Vec<u32> {
        let mut d = dev();
        let input = d.alloc_from(xs);
        let mut out = d.alloc::<u32>(xs.len());
        scan_exclusive::<u32, AddU32>(&mut d, &input, &mut out);
        d.dtoh(&out)
    }

    #[test]
    fn exclusive_small_cases() {
        assert_eq!(device_scan_exclusive_u32(&[]), Vec::<u32>::new());
        assert_eq!(device_scan_exclusive_u32(&[5]), vec![0]);
        assert_eq!(device_scan_exclusive_u32(&[1, 2, 3, 4]), vec![0, 1, 3, 6]);
    }

    #[test]
    fn exclusive_matches_host_across_sizes() {
        // Boundary sizes around the tile and around one-level/two-level
        // recursion: 512 = one tile; 513 spills; 262145 forces a
        // three-level hierarchy (512² = 262144).
        for n in [2usize, 31, 511, 512, 513, 1024, 5000, 262_144, 262_145] {
            let xs: Vec<u32> = (0..n as u32).map(|i| (i * 7 + 3) % 11).collect();
            let got = device_scan_exclusive_u32(&xs);
            assert_eq!(got, host::scan_exclusive::<u32, AddU32>(&xs), "n = {n}");
        }
    }

    #[test]
    fn inclusive_matches_host() {
        let mut d = dev();
        for n in [1usize, 512, 700, 10_000] {
            let xs: Vec<u32> = (0..n as u32).map(|i| i % 5).collect();
            let input = d.alloc_from(&xs);
            let mut out = d.alloc::<u32>(n);
            scan_inclusive::<u32, AddU32>(&mut d, &input, &mut out);
            assert_eq!(d.dtoh(&out), host::scan_inclusive::<u32, AddU32>(&xs), "n = {n}");
        }
    }

    #[test]
    fn f64_scan_close_to_host() {
        let mut d = dev();
        let xs: Vec<f64> = (0..4096).map(|i| ((i * 37) % 101) as f64 * 0.25).collect();
        let input = d.alloc_from(&xs);
        let mut out = d.alloc::<f64>(xs.len());
        scan_inclusive::<f64, AddF64>(&mut d, &input, &mut out);
        let got = d.dtoh(&out);
        let want = host::scan_inclusive::<f64, AddF64>(&xs);
        // Quarter-integers sum exactly in f64 at these magnitudes.
        assert_eq!(got, want);
    }

    #[test]
    fn scan_stays_on_device_until_download() {
        let mut d = dev();
        let xs = vec![1u32; 100_000];
        let input = d.alloc_from(&xs);
        let mut out = d.alloc::<u32>(xs.len());
        scan_exclusive::<u32, AddU32>(&mut d, &input, &mut out);
        let b = d.timeline().breakdown();
        assert_eq!(b.dtoh_bytes, 0, "no intermediate download");
        // 100k/512 = 196 blocks → level-2 scan of 196 sums (1 block) →
        // uniform add. 3 kernels total.
        assert_eq!(b.kernels, 3);
    }

    #[test]
    #[should_panic(expected = "output shorter")]
    fn short_output_rejected() {
        let mut d = dev();
        let input = d.alloc_from(&[1u32; 8]);
        let mut out = d.alloc::<u32>(4);
        scan_exclusive::<u32, AddU32>(&mut d, &input, &mut out);
    }
}
