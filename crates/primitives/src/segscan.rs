//! Device segmented scan and segmented reduction.
//!
//! The segmented scan is the centerpiece primitive of the paper ("we use
//! kernels and parallel computation patterns (i.e., segmented scan and
//! reduction)"): the backward sweep sums each parent's children, and with
//! children stored contiguously in level order those sums are exactly
//! per-segment reductions under head flags.
//!
//! Algorithm (Sengupta, Harris, Zhang, Owens — *Scan Primitives for GPU
//! Computing*, 2007): lift the operator to (flag, value) pairs
//! ([`crate::ops::seg_combine`]), run an intra-block Hillis–Steele
//! inclusive scan over the pairs in shared memory, then resolve
//! cross-block carries by recursively scanning the per-block aggregate
//! pairs and applying the carry to every element not preceded by a head
//! flag within its block.
//!
//! Two segmented-reduction strategies are provided:
//! * [`segment_totals`] — segmented scan + gather of segment tails (the
//!   paper's pattern);
//! * [`segment_reduce_direct`] — one thread loops per segment (the naive
//!   alternative; kept as the E7 ablation baseline, it serialises on deep
//!   skewed segments and scatters its loads).

use std::marker::PhantomData;

use simt::{
    BlockScope, Device, DeviceBuffer, DeviceCopy, DeviceError, GlobalMut, GlobalRef, Kernel,
    LaunchConfig,
};

use crate::map::{gather, launch_map, try_launch_map};
use crate::ops::{seg_combine, ScanOp, SegPair};

/// Threads (and elements) per segmented-scan block.
pub const SEGSCAN_BLOCK: u32 = 256;

struct SegScanBlocksKernel<'a, T, Op> {
    values: GlobalRef<'a, T>,
    flags: GlobalRef<'a, u32>,
    out_values: GlobalMut<'a, T>,
    out_flags: GlobalMut<'a, u32>,
    agg_values: GlobalMut<'a, T>,
    agg_flags: GlobalMut<'a, u32>,
    /// First element of the scanned range (global index).
    lo: usize,
    /// One past the last element of the scanned range (global index).
    hi: usize,
    _op: PhantomData<fn() -> Op>,
}

impl<T: DeviceCopy, Op: ScanOp<T>> Kernel for SegScanBlocksKernel<'_, T, Op> {
    fn name(&self) -> &'static str {
        "segscan_blocks"
    }

    fn block(&self, blk: &mut BlockScope) {
        let b = blk.block_dim();
        let base = self.lo + blk.block_idx() * b;
        // Double-buffered pair array: halves [0, b) and [b, 2b).
        let sh = blk.shared::<SegPair<T>>(2 * b);

        // Load one pair per thread; identity-pad the tail (a pad pair has
        // no flag and the identity value, so it never perturbs results).
        blk.threads(|t| {
            let i = base + t.tid();
            let p = if i < self.hi {
                SegPair { flag: t.ld(&self.flags, i), value: t.ld(&self.values, i) }
            } else {
                SegPair { flag: 0, value: Op::identity() }
            };
            t.sts(&sh, t.tid(), p);
        });

        // Hillis–Steele inclusive scan over pairs, ping-ponging halves.
        let mut offset = 1usize;
        let mut src = 0usize;
        while offset < b {
            let dst = b - src;
            blk.threads(|t| {
                let tid = t.tid();
                let cur = t.lds(&sh, src + tid);
                let next = if tid >= offset {
                    let prev = t.lds(&sh, src + tid - offset);
                    t.flops(Op::FLOPS);
                    seg_combine::<T, Op>(prev, cur)
                } else {
                    cur
                };
                t.sts(&sh, dst + tid, next);
            });
            src = dst;
            offset *= 2;
        }

        // Emit the block-local scan and the block aggregate pair.
        blk.threads(|t| {
            let tid = t.tid();
            let p = t.lds(&sh, src + tid);
            let i = base + tid;
            if i < self.hi {
                t.st(&self.out_values, i, p.value);
                t.st(&self.out_flags, i, p.flag);
            }
            if tid == b - 1 {
                t.st(&self.agg_values, t.block_idx(), p.value);
                t.st(&self.agg_flags, t.block_idx(), p.flag);
            }
        });
    }
}

/// Device inclusive segmented scan with head flags: a nonzero `flags[i]`
/// starts a new segment at `i`. Element 0 implicitly starts the first
/// segment.
///
/// `values` and `flags` must have equal length; `output` at least that
/// long.
pub fn segscan_inclusive<T: DeviceCopy, Op: ScanOp<T>>(
    dev: &mut Device,
    values: &DeviceBuffer<T>,
    flags: &DeviceBuffer<u32>,
    output: &mut DeviceBuffer<T>,
) {
    assert_eq!(values.len(), flags.len(), "segscan: values/flags length mismatch");
    assert!(output.len() >= values.len(), "segscan: output shorter than input");
    segscan_inclusive_range::<T, Op>(dev, values, flags, 0, values.len(), output);
}

/// [`segscan_inclusive`] restricted to the element range `[lo, hi)` of
/// `values`/`flags`, writing only `output[lo..hi]`.
///
/// The level-synchronous backward sweep scans exactly one tree level at a
/// time — a sub-range of the level-ordered arrays — which is what this
/// entry point exists for. Flags are interpreted within the range:
/// element `lo` implicitly starts the first segment.
pub fn segscan_inclusive_range<T: DeviceCopy, Op: ScanOp<T>>(
    dev: &mut Device,
    values: &DeviceBuffer<T>,
    flags: &DeviceBuffer<u32>,
    lo: usize,
    hi: usize,
    output: &mut DeviceBuffer<T>,
) {
    try_segscan_inclusive_range::<T, Op>(dev, values, flags, lo, hi, output)
        .unwrap_or_else(|e| panic!("{e}"));
}

/// Fallible [`segscan_inclusive_range`]: surfaces injected faults and
/// device loss as [`DeviceError`] instead of panicking.
pub fn try_segscan_inclusive_range<T: DeviceCopy, Op: ScanOp<T>>(
    dev: &mut Device,
    values: &DeviceBuffer<T>,
    flags: &DeviceBuffer<u32>,
    lo: usize,
    hi: usize,
    output: &mut DeviceBuffer<T>,
) -> Result<(), DeviceError> {
    assert_eq!(values.len(), flags.len(), "segscan: values/flags length mismatch");
    assert!(lo <= hi && hi <= values.len(), "segscan: invalid range {lo}..{hi}");
    assert!(output.len() >= hi, "segscan: output shorter than range end");
    if hi == lo {
        return Ok(());
    }
    let mut scanned_flags = dev.try_alloc::<u32>(values.len())?;
    segscan_impl::<T, Op>(dev, values, flags, lo, hi, output, &mut scanned_flags)
}

#[allow(clippy::too_many_arguments)]
fn segscan_impl<T: DeviceCopy, Op: ScanOp<T>>(
    dev: &mut Device,
    values: &DeviceBuffer<T>,
    flags: &DeviceBuffer<u32>,
    lo: usize,
    hi: usize,
    output: &mut DeviceBuffer<T>,
    scanned_flags: &mut DeviceBuffer<u32>,
) -> Result<(), DeviceError> {
    let len = hi - lo;
    if len == 0 {
        return Ok(());
    }
    let b = SEGSCAN_BLOCK as usize;
    let grid = len.div_ceil(b).max(1);
    let mut agg_values = dev.try_alloc::<T>(grid)?;
    let mut agg_flags = dev.try_alloc::<u32>(grid)?;
    let kernel = SegScanBlocksKernel::<'_, T, Op> {
        values: values.view(),
        flags: flags.view(),
        out_values: output.view_mut(),
        out_flags: scanned_flags.view_mut(),
        agg_values: agg_values.view_mut(),
        agg_flags: agg_flags.view_mut(),
        lo,
        hi,
        _op: PhantomData,
    };
    dev.try_launch(LaunchConfig::new(grid as u32, SEGSCAN_BLOCK), &kernel)?;

    if grid > 1 {
        // Scan the aggregates (inclusive) so block b's carry is the
        // combined pair of blocks 0..=b−1, i.e. scanned_agg[b−1].
        let mut scanned_agg = dev.try_alloc::<T>(grid)?;
        let mut scanned_agg_flags = dev.try_alloc::<u32>(grid)?;
        segscan_impl::<T, Op>(
            dev,
            &agg_values,
            &agg_flags,
            0,
            grid,
            &mut scanned_agg,
            &mut scanned_agg_flags,
        )?;

        let carry_v = scanned_agg.view();
        let out_v = output.view_mut();
        let flag_v = scanned_flags.view();
        try_launch_map(dev, len, "segscan_carry", move |t, i| {
            let blk = i / b;
            if blk == 0 {
                return;
            }
            let gi = lo + i;
            // A head flag anywhere in the block before (or at) element i
            // cuts the carry off.
            if t.ld(&flag_v, gi) != 0 {
                return;
            }
            let carry = t.ld(&carry_v, blk - 1);
            let v = t.ld_mut(&out_v, gi);
            t.flops(Op::FLOPS);
            t.st(&out_v, gi, Op::combine(carry, v));
        })?;
    }
    Ok(())
}

/// Segmented reduction via scan: writes the total of segment `s` (in
/// segment order) to `out[s]`, given the index of each segment's last
/// element.
///
/// This is the paper's pattern for the backward sweep: one segmented scan
/// over a level, then a gather of each parent's segment tail.
pub fn segment_totals<T: DeviceCopy, Op: ScanOp<T>>(
    dev: &mut Device,
    values: &DeviceBuffer<T>,
    flags: &DeviceBuffer<u32>,
    seg_last: &DeviceBuffer<u32>,
    out: &mut DeviceBuffer<T>,
) {
    assert!(out.len() >= seg_last.len(), "segment_totals: output shorter than segment count");
    let mut scanned = dev.alloc::<T>(values.len());
    segscan_inclusive::<T, Op>(dev, values, flags, &mut scanned);
    gather(dev, &scanned, seg_last, out);
}

/// Naive segmented reduction: one thread accumulates each segment
/// `values[offsets[s] .. offsets[s+1]]` serially.
///
/// `offsets` has `n_seg + 1` entries (CSR convention). Kept as the
/// ablation baseline for [`segment_totals`]: it launches once instead of
/// O(log) times, but long segments serialise a single thread and its
/// loads never coalesce.
pub fn segment_reduce_direct<T: DeviceCopy, Op: ScanOp<T>>(
    dev: &mut Device,
    values: &DeviceBuffer<T>,
    offsets: &DeviceBuffer<u32>,
    out: &mut DeviceBuffer<T>,
) {
    let n_seg = offsets.len().saturating_sub(1);
    assert!(out.len() >= n_seg, "segment_reduce_direct: output shorter than segment count");
    let val_v = values.view();
    let off_v = offsets.view();
    let out_v = out.view_mut();
    launch_map(dev, n_seg, "segreduce_direct", move |t, s| {
        let lo = t.ld(&off_v, s) as usize;
        let hi = t.ld(&off_v, s + 1) as usize;
        let mut acc = Op::identity();
        for i in lo..hi {
            let v = t.ld(&val_v, i);
            t.flops(Op::FLOPS);
            acc = Op::combine(acc, v);
        }
        t.st(&out_v, s, acc);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host;
    use crate::ops::{AddComplex, AddF64, AddU32};
    use numc::{c, Complex};
    use simt::DeviceProps;

    fn dev() -> Device {
        Device::with_workers(DeviceProps::paper_rig(), 2)
    }

    fn device_segscan_u32(xs: &[u32], flags: &[u32]) -> Vec<u32> {
        let mut d = dev();
        let values = d.alloc_from(xs);
        let fl = d.alloc_from(flags);
        let mut out = d.alloc::<u32>(xs.len());
        segscan_inclusive::<u32, AddU32>(&mut d, &values, &fl, &mut out);
        d.dtoh(&out)
    }

    #[test]
    fn small_segments() {
        let xs = [1u32, 2, 3, 4, 5];
        let flags = [1u32, 0, 1, 0, 0];
        assert_eq!(device_segscan_u32(&xs, &flags), vec![1, 3, 3, 7, 12]);
    }

    #[test]
    fn empty_input() {
        assert_eq!(device_segscan_u32(&[], &[]), Vec::<u32>::new());
    }

    #[test]
    fn single_segment_equals_plain_scan() {
        let xs: Vec<u32> = (0..1000).map(|i| i % 7).collect();
        let mut flags = vec![0u32; 1000];
        flags[0] = 1;
        assert_eq!(device_segscan_u32(&xs, &flags), host::scan_inclusive::<u32, AddU32>(&xs));
    }

    #[test]
    fn cross_block_segments_match_host() {
        // Segments of varying sizes straddling the 256-element block
        // boundary, across one- and two-level recursion sizes.
        for n in [255usize, 256, 257, 1000, 70_000] {
            let xs: Vec<u32> = (0..n as u32).map(|i| (i % 9) + 1).collect();
            let flags: Vec<u32> =
                (0..n).map(|i| u32::from(i == 0 || i % 37 == 0 || i % 300 == 5)).collect();
            let got = device_segscan_u32(&xs, &flags);
            let want = host::segscan_inclusive::<u32, AddU32>(&xs, &flags);
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn one_giant_segment_crossing_many_blocks() {
        // Carry must propagate through the recursive aggregate scan.
        let n = 66_000usize;
        let xs = vec![1u32; n];
        let mut flags = vec![0u32; n];
        flags[0] = 1;
        let got = device_segscan_u32(&xs, &flags);
        assert_eq!(got[n - 1], n as u32);
        assert_eq!(got[300], 301);
    }

    #[test]
    fn every_element_its_own_segment() {
        let n = 3000usize;
        let xs: Vec<u32> = (0..n as u32).collect();
        let flags = vec![1u32; n];
        assert_eq!(device_segscan_u32(&xs, &flags), xs);
    }

    #[test]
    fn complex_segments_match_host() {
        let n = 5000usize;
        let xs: Vec<Complex> = (0..n).map(|i| c((i % 11) as f64, -((i % 5) as f64))).collect();
        let flags: Vec<u32> = (0..n).map(|i| u32::from(i % 23 == 0)).collect();
        let mut d = dev();
        let values = d.alloc_from(&xs);
        let fl = d.alloc_from(&flags);
        let mut out = d.alloc::<Complex>(n);
        segscan_inclusive::<Complex, AddComplex>(&mut d, &values, &fl, &mut out);
        let got = d.dtoh(&out);
        let want = host::segscan_inclusive::<Complex, AddComplex>(&xs, &flags);
        for (g, w) in got.iter().zip(&want) {
            assert!((*g - *w).abs() < 1e-9, "{g:?} vs {w:?}");
        }
    }

    #[test]
    fn segment_totals_matches_host() {
        let xs: Vec<f64> = (0..2000).map(|i| (i % 13) as f64).collect();
        let flags: Vec<u32> = (0..2000).map(|i| u32::from(i % 17 == 0)).collect();
        // Segment tails: positions right before each flag (after the
        // first), plus the final element.
        let mut last = Vec::new();
        for (i, &f) in flags.iter().enumerate().skip(1) {
            if f != 0 {
                last.push(i as u32 - 1);
            }
        }
        last.push(1999);

        let mut d = dev();
        let values = d.alloc_from(&xs);
        let fl = d.alloc_from(&flags);
        let seg_last = d.alloc_from(&last);
        let mut out = d.alloc::<f64>(last.len());
        segment_totals::<f64, AddF64>(&mut d, &values, &fl, &seg_last, &mut out);
        assert_eq!(d.dtoh(&out), host::segment_totals::<f64, AddF64>(&xs, &flags));
    }

    #[test]
    fn direct_reduce_matches_scan_based() {
        let xs: Vec<f64> = (0..5000).map(|i| ((i * 31) % 101) as f64).collect();
        // Build CSR offsets for segments of irregular lengths.
        let mut offsets = vec![0u32];
        let mut pos = 0u32;
        let mut k = 1u32;
        while (pos as usize) < xs.len() {
            pos = (pos + k * 3 % 40 + 1).min(xs.len() as u32);
            offsets.push(pos);
            k += 1;
        }
        let n_seg = offsets.len() - 1;
        // Equivalent head flags.
        let mut flags = vec![0u32; xs.len()];
        for &o in &offsets[..n_seg] {
            flags[o as usize] = 1;
        }

        let mut d = dev();
        let values = d.alloc_from(&xs);
        let offs = d.alloc_from(&offsets);
        let mut out = d.alloc::<f64>(n_seg);
        segment_reduce_direct::<f64, AddF64>(&mut d, &values, &offs, &mut out);
        let got = d.dtoh(&out);
        let want = host::segment_totals::<f64, AddF64>(&xs, &flags);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn direct_reduce_empty_segments_yield_identity() {
        let mut d = dev();
        let values = d.alloc_from(&[1.0_f64, 2.0]);
        let offs = d.alloc_from(&[0u32, 0, 2, 2]);
        let mut out = d.alloc::<f64>(3);
        segment_reduce_direct::<f64, AddF64>(&mut d, &values, &offs, &mut out);
        assert_eq!(d.dtoh(&out), vec![0.0, 3.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_flags_rejected() {
        let mut d = dev();
        let values = d.alloc_from(&[1u32; 8]);
        let flags = d.alloc_from(&[1u32; 7]);
        let mut out = d.alloc::<u32>(8);
        segscan_inclusive::<u32, AddU32>(&mut d, &values, &flags, &mut out);
    }
}

#[cfg(test)]
mod range_tests {
    use super::*;
    use crate::host;
    use crate::ops::AddU32;
    use simt::DeviceProps;

    #[test]
    fn range_scan_touches_only_the_range() {
        let n = 2000usize;
        let xs: Vec<u32> = (0..n as u32).map(|i| i % 4 + 1).collect();
        let flags: Vec<u32> = (0..n).map(|i| u32::from(i % 10 == 0)).collect();
        let (lo, hi) = (700, 1500);

        let mut d = Device::with_workers(DeviceProps::paper_rig(), 2);
        let values = d.alloc_from(&xs);
        let fl = d.alloc_from(&flags);
        let mut out = d.alloc::<u32>(n);
        crate::fill(&mut d, &mut out, 9999u32);
        segscan_inclusive_range::<u32, AddU32>(&mut d, &values, &fl, lo, hi, &mut out);
        let got = d.dtoh(&out);

        let want_mid = host::segscan_inclusive::<u32, AddU32>(&xs[lo..hi], &flags[lo..hi]);
        assert_eq!(&got[lo..hi], want_mid.as_slice());
        assert!(got[..lo].iter().all(|&v| v == 9999), "below range untouched");
        assert!(got[hi..].iter().all(|&v| v == 9999), "above range untouched");
    }

    #[test]
    fn range_scan_small_and_unaligned() {
        let n = 600usize;
        let xs = vec![1u32; n];
        let mut flags = vec![0u32; n];
        for i in (0..n).step_by(7) {
            flags[i] = 1;
        }
        let mut d = Device::with_workers(DeviceProps::paper_rig(), 2);
        let values = d.alloc_from(&xs);
        let fl = d.alloc_from(&flags);
        for (lo, hi) in [(0usize, 1usize), (5, 5), (3, 300), (250, 600), (599, 600)] {
            let mut out = d.alloc::<u32>(n);
            segscan_inclusive_range::<u32, AddU32>(&mut d, &values, &fl, lo, hi, &mut out);
            let got = d.dtoh(&out);
            let want = host::segscan_inclusive::<u32, AddU32>(&xs[lo..hi], &flags[lo..hi]);
            assert_eq!(&got[lo..hi], want.as_slice(), "range {lo}..{hi}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn inverted_range_rejected() {
        let mut d = Device::paper_rig();
        let values = d.alloc_from(&[1u32; 4]);
        let fl = d.alloc_from(&[1u32; 4]);
        let mut out = d.alloc::<u32>(4);
        segscan_inclusive_range::<u32, AddU32>(&mut d, &values, &fl, 3, 1, &mut out);
    }
}
