//! Sequential host reference implementations of every primitive.
//!
//! These serve two purposes: they are the oracles the device kernels are
//! tested against, and they are the building blocks of the serial CPU
//! baseline solver (the paper's comparator runs the same arithmetic
//! sequentially).

use simt::DeviceCopy;

use crate::ops::ScanOp;

/// Sequential reduction.
pub fn reduce<T: DeviceCopy, Op: ScanOp<T>>(xs: &[T]) -> T {
    xs.iter().fold(Op::identity(), |a, &b| Op::combine(a, b))
}

/// Sequential exclusive scan: `out[i] = x[0] ⊕ … ⊕ x[i−1]`, `out[0] = id`.
pub fn scan_exclusive<T: DeviceCopy, Op: ScanOp<T>>(xs: &[T]) -> Vec<T> {
    let mut acc = Op::identity();
    xs.iter()
        .map(|&x| {
            let out = acc;
            acc = Op::combine(acc, x);
            out
        })
        .collect()
}

/// Sequential inclusive scan: `out[i] = x[0] ⊕ … ⊕ x[i]`.
pub fn scan_inclusive<T: DeviceCopy, Op: ScanOp<T>>(xs: &[T]) -> Vec<T> {
    let mut acc = Op::identity();
    xs.iter()
        .map(|&x| {
            acc = Op::combine(acc, x);
            acc
        })
        .collect()
}

/// Sequential inclusive *segmented* scan with head flags (`flags[i] != 0`
/// starts a new segment at `i`).
pub fn segscan_inclusive<T: DeviceCopy, Op: ScanOp<T>>(xs: &[T], flags: &[u32]) -> Vec<T> {
    assert_eq!(xs.len(), flags.len(), "segscan: values/flags length mismatch");
    let mut acc = Op::identity();
    xs.iter()
        .zip(flags)
        .map(|(&x, &f)| {
            if f != 0 {
                acc = x;
            } else {
                acc = Op::combine(acc, x);
            }
            acc
        })
        .collect()
}

/// Per-segment totals, in segment order, for head-flag segmented input.
/// An empty input yields no segments; input without a leading flag treats
/// element 0 as starting the first segment (CUDA convention).
pub fn segment_totals<T: DeviceCopy, Op: ScanOp<T>>(xs: &[T], flags: &[u32]) -> Vec<T> {
    assert_eq!(xs.len(), flags.len(), "segment_totals: length mismatch");
    let mut out = Vec::new();
    let mut acc = Op::identity();
    let mut open = false;
    for (i, (&x, &f)) in xs.iter().zip(flags).enumerate() {
        if f != 0 || i == 0 {
            if open {
                out.push(acc);
            }
            acc = x;
            open = true;
        } else {
            acc = Op::combine(acc, x);
        }
    }
    if open {
        out.push(acc);
    }
    out
}

/// Gather: `out[i] = src[idx[i]]`.
pub fn gather<T: DeviceCopy>(src: &[T], idx: &[u32]) -> Vec<T> {
    idx.iter().map(|&i| src[i as usize]).collect()
}

/// Scatter: `out[idx[i]] = src[i]` over a fresh default-initialised
/// output of length `out_len`. Duplicate indices are a caller bug (last
/// write wins here; a race on the device).
pub fn scatter<T: DeviceCopy>(src: &[T], idx: &[u32], out_len: usize) -> Vec<T> {
    let mut out = vec![T::default(); out_len];
    for (&v, &i) in src.iter().zip(idx) {
        out[i as usize] = v;
    }
    out
}

/// Stream compaction: keep `xs[i]` where `keep[i] != 0`, preserving order.
pub fn compact<T: DeviceCopy>(xs: &[T], keep: &[u32]) -> Vec<T> {
    assert_eq!(xs.len(), keep.len(), "compact: length mismatch");
    xs.iter().zip(keep).filter(|(_, &k)| k != 0).map(|(&x, _)| x).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{AddF64, AddU32, MaxF64};

    #[test]
    fn reduce_matches_sum() {
        let xs: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(reduce::<f64, AddF64>(&xs), 55.0);
        assert_eq!(reduce::<f64, AddF64>(&[]), 0.0);
        assert_eq!(reduce::<f64, MaxF64>(&[3.0, -1.0, 7.0, 2.0]), 7.0);
    }

    #[test]
    fn scans_shift_relationship() {
        let xs = [1u32, 2, 3, 4];
        let exc = scan_exclusive::<u32, AddU32>(&xs);
        let inc = scan_inclusive::<u32, AddU32>(&xs);
        assert_eq!(exc, vec![0, 1, 3, 6]);
        assert_eq!(inc, vec![1, 3, 6, 10]);
        for i in 0..xs.len() {
            assert_eq!(inc[i], exc[i] + xs[i]);
        }
    }

    #[test]
    fn scans_of_empty() {
        assert!(scan_exclusive::<u32, AddU32>(&[]).is_empty());
        assert!(scan_inclusive::<u32, AddU32>(&[]).is_empty());
    }

    #[test]
    fn segscan_restarts_at_flags() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let flags = [1, 0, 1, 0, 0];
        assert_eq!(segscan_inclusive::<f64, AddF64>(&xs, &flags), vec![1.0, 3.0, 3.0, 7.0, 12.0]);
    }

    #[test]
    fn segscan_without_leading_flag() {
        // Element 0 implicitly starts a segment (identity-seeded).
        let xs = [5.0, 1.0];
        let flags = [0, 0];
        assert_eq!(segscan_inclusive::<f64, AddF64>(&xs, &flags), vec![5.0, 6.0]);
    }

    #[test]
    fn segment_totals_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let flags = [1, 0, 1, 0, 0];
        assert_eq!(segment_totals::<f64, AddF64>(&xs, &flags), vec![3.0, 12.0]);
        assert!(segment_totals::<f64, AddF64>(&[], &[]).is_empty());
        // Missing leading flag: element 0 still opens a segment.
        assert_eq!(segment_totals::<f64, AddF64>(&[2.0, 3.0], &[0, 1]), vec![2.0, 3.0]);
    }

    #[test]
    fn single_element_segments() {
        let xs = [1.0, 2.0, 3.0];
        let flags = [1, 1, 1];
        assert_eq!(segment_totals::<f64, AddF64>(&xs, &flags), vec![1.0, 2.0, 3.0]);
        assert_eq!(segscan_inclusive::<f64, AddF64>(&xs, &flags), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let src = [10.0, 20.0, 30.0, 40.0];
        let perm = [3u32, 0, 2, 1];
        let g = gather(&src, &perm);
        assert_eq!(g, vec![40.0, 10.0, 30.0, 20.0]);
        let back = scatter(&g, &perm, 4);
        assert_eq!(back, src.to_vec());
    }

    #[test]
    fn compact_keeps_flagged() {
        let xs = [1, 2, 3, 4, 5];
        let keep = [1, 0, 1, 0, 1];
        assert_eq!(compact(&xs, &keep), vec![1, 3, 5]);
        assert_eq!(compact::<i32>(&[], &[]), Vec::<i32>::new());
    }
}
