//! # primitives — data-parallel building blocks on the `simt` device
//!
//! From-scratch implementations of the parallel computation patterns the
//! paper's CUDA code relies on ("segmented scan and reduction"), written
//! as [`simt`] kernels:
//!
//! * [`reduce`] — shared-memory tree reduction (Harris),
//! * [`scan_exclusive`] / [`scan_inclusive`] — work-efficient Blelloch
//!   scan with hierarchical block sums,
//! * [`segscan_inclusive`] / [`segment_totals`] — head-flag segmented
//!   scan (Sengupta et al.) and scan-based segmented reduction,
//! * [`segment_reduce_direct`] — naive thread-per-segment reduction (the
//!   ablation baseline),
//! * [`gather`] / [`scatter`] / [`fill`] / [`compact`] — data movement,
//! * [`launch_map`] — one-thread-per-element kernels from closures.
//!
//! Each primitive has a sequential oracle in [`host`]; the test suites
//! (including property tests in `tests/`) check device-vs-host agreement
//! across block-boundary sizes, and everything runs under `racecheck`.
//!
//! ```
//! use simt::Device;
//! use primitives::{scan_inclusive, ops::AddU32};
//!
//! let mut dev = Device::paper_rig();
//! let xs = dev.alloc_from(&[1u32, 2, 3, 4]);
//! let mut out = dev.alloc::<u32>(4);
//! scan_inclusive::<u32, AddU32>(&mut dev, &xs, &mut out);
//! assert_eq!(dev.dtoh(&out), vec![1, 3, 6, 10]);
//! ```

#![warn(missing_docs)]

mod compact;
pub mod host;
mod map;
pub mod ops;
mod reduce;
mod scan;
mod segscan;

pub use compact::compact;
pub use map::{fill, gather, launch_map, launch_map_with_block, scatter, try_fill, try_launch_map};
pub use reduce::{
    reduce, reduce_batched, try_reduce, try_reduce_batched, REDUCE_BLOCK, REDUCE_TILE,
};
pub use scan::{scan_exclusive, scan_inclusive, try_scan_exclusive, SCAN_BLOCK, SCAN_TILE};
pub use segscan::{
    segment_reduce_direct, segment_totals, segscan_inclusive, segscan_inclusive_range,
    try_segscan_inclusive_range, SEGSCAN_BLOCK,
};
