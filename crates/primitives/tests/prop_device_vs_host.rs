//! Property tests: every device primitive must agree with its sequential
//! host oracle on arbitrary inputs, including sizes that straddle block
//! and recursion boundaries.

use check::gen::{just, one_of, tuple2, tuple3, u64_any, u64_in, usize_in, vec_of, Gen};
use check::{checker, prop_assert, prop_assert_eq, CaseResult};
use primitives::ops::{AddF64, AddU32, MaxAbsF64, MaxF64, MinF64};
use primitives::{
    compact, gather, host, reduce, scan_exclusive, scan_inclusive, scatter,
    segment_reduce_direct, segment_totals, segscan_inclusive,
};
use simt::{Device, DeviceProps};

fn dev() -> Device {
    Device::with_workers(DeviceProps::paper_rig(), 2)
}

/// Arbitrary length biased toward block boundaries (256/512 multiples ±1).
fn interesting_len() -> Gen<usize> {
    one_of(vec![
        usize_in(1..64),
        just(255),
        just(256),
        just(257),
        just(511),
        just(512),
        just(513),
        just(1024),
        usize_in(600..1400),
    ])
}

#[test]
fn reduce_add_u32_matches_host() {
    checker("reduce_add_u32_matches_host").cases(48).run(
        tuple2(interesting_len(), u64_any()),
        |&(n, seed)| -> CaseResult {
            let xs: Vec<u32> = (0..n).map(|i| ((seed >> (i % 48)) as u32) % 1000).collect();
            let mut d = dev();
            let buf = d.alloc_from(&xs);
            prop_assert_eq!(reduce::<u32, AddU32>(&mut d, &buf), host::reduce::<u32, AddU32>(&xs));
            Ok(())
        },
    );
}

#[test]
fn reduce_max_f64_matches_host() {
    use check::gen::f64_in;
    checker("reduce_max_f64_matches_host").cases(48).run(
        vec_of(f64_in(-1e6..1e6), 1..1200),
        |xs: &Vec<f64>| -> CaseResult {
            let mut d = dev();
            let buf = d.alloc_from(xs);
            prop_assert_eq!(reduce::<f64, MaxF64>(&mut d, &buf), host::reduce::<f64, MaxF64>(xs));
            Ok(())
        },
    );
}

/// f64 equality that treats NaN as equal to NaN (reductions over corrupt
/// data must agree on *which* non-value they produce, not on NaN != NaN).
fn f64_bitwise_agree(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || a == b
}

#[test]
fn reduce_max_f64_matches_host_on_nonfinite_inputs() {
    use check::gen::f64_in;
    // Finite values with NaN/±Inf injected at seed-chosen positions: the
    // device tree reduction (identity-padded tiles, arbitrary fold shape)
    // and the sequential host fold must agree, including propagating NaN.
    checker("reduce_max_f64_matches_host_on_nonfinite_inputs").cases(48).run(
        tuple3(interesting_len(), u64_any(), f64_in(-1e6..1e6)),
        |&(n, seed, base)| -> CaseResult {
            let specials = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
            let xs: Vec<f64> = (0..n)
                .map(|i| {
                    let h = seed.wrapping_mul(i as u64 + 11).wrapping_add(0x9e3779b97f4a7c15);
                    if h % 5 == 0 {
                        specials[(h >> 8) as usize % specials.len()]
                    } else {
                        base + (h >> 16) as f64
                    }
                })
                .collect();
            let mut d = dev();
            let buf = d.alloc_from(&xs);
            let got_max = reduce::<f64, MaxF64>(&mut d, &buf);
            let want_max = host::reduce::<f64, MaxF64>(&xs);
            prop_assert!(
                f64_bitwise_agree(got_max, want_max),
                "MaxF64 device {got_max} vs host {want_max}"
            );
            let got_min = reduce::<f64, MinF64>(&mut d, &buf);
            let want_min = host::reduce::<f64, MinF64>(&xs);
            prop_assert!(
                f64_bitwise_agree(got_min, want_min),
                "MinF64 device {got_min} vs host {want_min}"
            );
            // NaN anywhere must surface as NaN from both sides.
            if xs.iter().any(|x| x.is_nan()) {
                prop_assert!(got_max.is_nan() && want_max.is_nan(), "NaN was dropped");
            }
            Ok(())
        },
    );
}

#[test]
fn reduce_max_abs_f64_matches_host_on_magnitudes() {
    checker("reduce_max_abs_f64_matches_host_on_magnitudes").cases(48).run(
        tuple2(interesting_len(), u64_any()),
        |&(n, seed)| -> CaseResult {
            // Magnitude-domain inputs (non-negative or NaN), as produced
            // by the solvers' |ΔV| buffers.
            let xs: Vec<f64> = (0..n)
                .map(|i| {
                    let h = seed.wrapping_mul(i as u64 + 3).wrapping_add(0xd1b54a32d192ed03);
                    match h % 7 {
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        _ => (h >> 12) as f64 * 1e-6,
                    }
                })
                .collect();
            let mut d = dev();
            let buf = d.alloc_from(&xs);
            let got = reduce::<f64, MaxAbsF64>(&mut d, &buf);
            let want = host::reduce::<f64, MaxAbsF64>(&xs);
            prop_assert!(f64_bitwise_agree(got, want), "MaxAbsF64 device {got} vs host {want}");
            Ok(())
        },
    );
}

#[test]
fn scan_exclusive_matches_host() {
    checker("scan_exclusive_matches_host").cases(48).run(
        tuple2(interesting_len(), u64_any()),
        |&(n, seed)| -> CaseResult {
            let xs: Vec<u32> =
                (0..n).map(|i| ((seed.wrapping_mul(i as u64 + 1) >> 7) % 97) as u32).collect();
            let mut d = dev();
            let input = d.alloc_from(&xs);
            let mut out = d.alloc::<u32>(n);
            scan_exclusive::<u32, AddU32>(&mut d, &input, &mut out);
            prop_assert_eq!(d.dtoh(&out), host::scan_exclusive::<u32, AddU32>(&xs));
            Ok(())
        },
    );
}

#[test]
fn scan_inclusive_matches_host() {
    checker("scan_inclusive_matches_host").cases(48).run(
        tuple2(interesting_len(), u64_any()),
        |&(n, seed)| -> CaseResult {
            let xs: Vec<u32> =
                (0..n).map(|i| ((seed.wrapping_add(i as u64 * 31) >> 3) % 53) as u32).collect();
            let mut d = dev();
            let input = d.alloc_from(&xs);
            let mut out = d.alloc::<u32>(n);
            scan_inclusive::<u32, AddU32>(&mut d, &input, &mut out);
            prop_assert_eq!(d.dtoh(&out), host::scan_inclusive::<u32, AddU32>(&xs));
            Ok(())
        },
    );
}

#[test]
fn segscan_matches_host() {
    checker("segscan_matches_host").cases(48).run(
        tuple3(interesting_len(), u64_any(), u64_in(1..20)),
        |&(n, seed, flag_density)| -> CaseResult {
            let xs: Vec<u32> = (0..n).map(|i| ((seed >> (i % 40)) % 11) as u32).collect();
            let flags: Vec<u32> = (0..n)
                .map(|i| u32::from(i == 0 || (seed.wrapping_mul(i as u64) % flag_density) == 0))
                .collect();
            let mut d = dev();
            let values = d.alloc_from(&xs);
            let fl = d.alloc_from(&flags);
            let mut out = d.alloc::<u32>(n);
            segscan_inclusive::<u32, AddU32>(&mut d, &values, &fl, &mut out);
            prop_assert_eq!(d.dtoh(&out), host::segscan_inclusive::<u32, AddU32>(&xs, &flags));
            Ok(())
        },
    );
}

#[test]
fn segment_totals_matches_host() {
    checker("segment_totals_matches_host").cases(48).run(
        tuple2(usize_in(2..1200), u64_any()),
        |&(n, seed)| -> CaseResult {
            let xs: Vec<f64> = (0..n).map(|i| ((seed >> (i % 32)) % 7) as f64).collect();
            let mut flags: Vec<u32> =
                (0..n).map(|i| u32::from(seed.wrapping_mul(i as u64 + 3) % 9 == 0)).collect();
            flags[0] = 1;
            let mut last = Vec::new();
            for (i, &f) in flags.iter().enumerate().skip(1) {
                if f != 0 {
                    last.push(i as u32 - 1);
                }
            }
            last.push(n as u32 - 1);

            let mut d = dev();
            let values = d.alloc_from(&xs);
            let fl = d.alloc_from(&flags);
            let seg_last = d.alloc_from(&last);
            let mut out = d.alloc::<f64>(last.len());
            segment_totals::<f64, AddF64>(&mut d, &values, &fl, &seg_last, &mut out);
            prop_assert_eq!(d.dtoh(&out), host::segment_totals::<f64, AddF64>(&xs, &flags));
            Ok(())
        },
    );
}

#[test]
fn direct_segment_reduce_agrees_with_scan_based() {
    checker("direct_segment_reduce_agrees_with_scan_based").cases(48).run(
        tuple2(vec_of(usize_in(1..40), 1..64), u64_any()),
        |(seg_lens, seed): &(Vec<usize>, u64)| -> CaseResult {
            let n: usize = seg_lens.iter().sum();
            let xs: Vec<f64> = (0..n).map(|i| ((seed >> (i % 24)) % 13) as f64).collect();
            let mut offsets = vec![0u32];
            let mut flags = vec![0u32; n];
            let mut last = Vec::new();
            let mut pos = 0usize;
            for &len in seg_lens {
                flags[pos] = 1;
                pos += len;
                offsets.push(pos as u32);
                last.push(pos as u32 - 1);
            }

            let mut d = dev();
            let values = d.alloc_from(&xs);
            let offs = d.alloc_from(&offsets);
            let fl = d.alloc_from(&flags);
            let seg_last = d.alloc_from(&last);
            let mut direct = d.alloc::<f64>(seg_lens.len());
            let mut scanned = d.alloc::<f64>(seg_lens.len());
            segment_reduce_direct::<f64, AddF64>(&mut d, &values, &offs, &mut direct);
            segment_totals::<f64, AddF64>(&mut d, &values, &fl, &seg_last, &mut scanned);
            let a = d.dtoh(&direct);
            let b = d.dtoh(&scanned);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-9);
            }
            Ok(())
        },
    );
}

#[test]
fn gather_then_scatter_is_identity_for_permutations() {
    checker("gather_then_scatter_is_identity_for_permutations").cases(48).run(
        tuple2(usize_in(1..800), u64_any()),
        |&(n, seed)| -> CaseResult {
            // Build a permutation deterministically from the seed.
            let mut perm: Vec<u32> = (0..n as u32).collect();
            let mut s = seed | 1;
            for i in (1..n).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (s >> 33) as usize % (i + 1);
                perm.swap(i, j);
            }
            let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();

            let mut d = dev();
            let src = d.alloc_from(&xs);
            let idx = d.alloc_from(&perm);
            let mut mid = d.alloc::<f64>(n);
            gather(&mut d, &src, &idx, &mut mid);
            let mut back = d.alloc::<f64>(n);
            scatter(&mut d, &mid, &idx, &mut back);
            prop_assert_eq!(d.dtoh(&back), xs);
            Ok(())
        },
    );
}

#[test]
fn compact_matches_host() {
    checker("compact_matches_host").cases(48).run(
        tuple2(usize_in(1..900), u64_any()),
        |&(n, seed)| -> CaseResult {
            let xs: Vec<u32> = (0..n as u32).collect();
            let keep: Vec<u32> =
                (0..n).map(|i| u32::from(seed.wrapping_mul(i as u64 + 7) % 3 == 0)).collect();
            let mut d = dev();
            let input = d.alloc_from(&xs);
            let keep_b = d.alloc_from(&keep);
            let out = compact(&mut d, &input, &keep_b);
            prop_assert_eq!(d.dtoh(&out), host::compact(&xs, &keep));
            Ok(())
        },
    );
}
