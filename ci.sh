#!/usr/bin/env bash
# Offline CI for the FBS power-flow repo. Two legs:
#
#   1. Tier-1 verify: release build + the full default test suite.
#   2. Racecheck: re-runs every simt and fbs device kernel under the
#      per-cell data-race detector (simt's `racecheck` feature).
#
# Everything runs with --offline — the repo has zero external registry
# dependencies (see DESIGN.md, "Dependency policy"), so a warm toolchain
# is all that's needed.

set -euo pipefail
cd "$(dirname "$0")"

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release --offline
cargo test -q --offline

echo "== racecheck: device kernels under the simt race detector =="
cargo test -q --offline --features racecheck -p simt -p fbs

echo "== ci.sh: all green =="
