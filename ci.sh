#!/usr/bin/env bash
# Offline CI for the FBS power-flow repo. Five legs:
#
#   1. Tier-1 verify: release build + the full default test suite.
#   2. Divergence/NaN hardening: the convergence-status suites (monitor
#      unit tests, cross-solver collapse acceptance, batch masking, CLI
#      exit codes) run by name so a filtered tier-1 can't skip them.
#   3. Fault injection/recovery: the resilience suites (fault-plan
#      determinism, checkpoint/rollback recovery, degradation, CLI
#      exit-5/replay) run by name, plus a smoke run of the E12 bench.
#   4. Racecheck: re-runs every simt and fbs device kernel under the
#      per-cell data-race detector (simt's `racecheck` feature).
#   5. Lint: clippy over every target with warnings promoted to errors.
#
# Everything runs with --offline — the repo has zero external registry
# dependencies (see DESIGN.md, "Dependency policy"), so a warm toolchain
# is all that's needed.

set -euo pipefail
cd "$(dirname "$0")"

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release --offline
cargo test -q --offline

echo "== divergence/NaN hardening: status suites =="
cargo test -q --offline -p fbs --lib status::
cargo test -q --offline --test prop_divergence_status
cargo test -q --offline -p fbs-cli --test cli_commands solve_exit_codes_reflect_status

echo "== fault injection/recovery: resilience suites =="
cargo test -q --offline -p simt --lib fault::
cargo test -q --offline -p fbs --lib recovery::
cargo test -q --offline -p fbs --test prop_fault_recovery
cargo test -q --offline -p fbs-cli --test cli_commands -- device_loss byte_identical
E12_SMOKE=1 cargo run -q --offline --release -p fbs-bench --bin exp_e12_faults > /dev/null

echo "== racecheck: device kernels under the simt race detector =="
cargo test -q --offline --features racecheck -p simt -p fbs

echo "== lint: cargo clippy -D warnings =="
cargo clippy -q --offline --all-targets -- -D warnings

echo "== ci.sh: all green =="
