#!/usr/bin/env bash
# Offline CI for the FBS power-flow repo. Twelve legs:
#
#   1. Tier-1 verify: release build + the full default test suite.
#   2. Divergence/NaN hardening: the convergence-status suites (monitor
#      unit tests, cross-solver collapse acceptance, batch masking, CLI
#      exit codes) run by name so a filtered tier-1 can't skip them.
#   3. Fault injection/recovery: the resilience suites (fault-plan
#      determinism, checkpoint/rollback recovery, degradation, CLI
#      exit-5/replay) run by name, plus a smoke run of the E12 bench.
#   4. Service: the robustness-service suites (deadline/breaker/
#      backpressure unit + property tests, parser-hardening fuzz, CLI
#      exit-6/7) under a hard wall-clock ceiling — a hung watchdog or
#      drain must fail the leg, not wedge CI — plus a smoke run of the
#      E13 bench.
#   5. Telemetry: the metrics/trace subsystem suites (registry,
#      histogram merge/quantile properties, exporter goldens) plus the
#      CLI golden-trace tests — a fixed-seed trace must stay
#      byte-identical and the run summary must reconcile with the
#      solver's phase report.
#   6. Tensor batch: the tensor-engine unit suite and the four-family
#      property suite (serial parity, masking, determinism, fault
#      recovery) under a wall-clock ceiling, plus an `E9_SMOKE` run of
#      the E9 bench as an end-to-end sanity pass.
#   7. Contingency: the topology-delta property suite (revertibility,
#      rebuild equivalence, warm starts, screening parity), the
#      screener unit suite, the CLI `screen` subcommand test, and an
#      `E14_SMOKE` run of the E14 bench — all under wall-clock
#      ceilings.
#   8. Fleet: the multi-device resilience suites (fleet unit tests,
#      the five-family property suite — parity under kills,
#      conservation, ladder ordering, replay, scaling — and the CLI
#      `fleet` subcommand test) under wall-clock ceilings, plus an
#      `E15_SMOKE` run of the E15 bench and a seeded chaos replay
#      through the CLI that must exit 0 with one device scripted dead.
#   9. Integrity/soak: the data-integrity suites (CRC64 transfer
#      checks, canary audits, shadow-verification sampler, the
#      first-request corruption property tests) run by name, plus an
#      `E16_SMOKE` run of the E16 chaos-soak bench and a seeded storm
#      soak through the CLI that must exit 0 (exit 8 would mean an
#      undetected corruption reached an answer).
#  10. Mesh/DG: the weakly-meshed + distributed-generation suites (the
#      mesh unit suite, the five-family property suite — radial
#      pass-through, PV set-point hold, Q-limit clamp equivalence,
#      hand-computed Thevenin parity, cross-backend agreement — and the
#      CLI meshed/DG + exit-9 tests) under wall-clock ceilings, plus an
#      `E17_SMOKE` run of the E17 bench.
#  11. Racecheck: re-runs every simt and fbs device kernel under the
#      per-cell data-race detector (simt's `racecheck` feature).
#  12. Lint: clippy over every target with warnings promoted to errors.
#
# Everything runs with --offline — the repo has zero external registry
# dependencies (see DESIGN.md, "Dependency policy"), so a warm toolchain
# is all that's needed.

set -euo pipefail
cd "$(dirname "$0")"

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release --offline
cargo test -q --offline

echo "== divergence/NaN hardening: status suites =="
cargo test -q --offline -p fbs --lib status::
cargo test -q --offline --test prop_divergence_status
cargo test -q --offline -p fbs-cli --test cli_commands solve_exit_codes_reflect_status

echo "== fault injection/recovery: resilience suites =="
cargo test -q --offline -p simt --lib fault::
cargo test -q --offline -p fbs --lib recovery::
cargo test -q --offline -p fbs --test prop_fault_recovery
cargo test -q --offline -p fbs-cli --test cli_commands -- device_loss byte_identical
E12_SMOKE=1 cargo run -q --offline --release -p fbs-bench --bin exp_e12_faults > /dev/null

echo "== service: deadlines, breaker, backpressure, parser hardening =="
timeout 300 cargo test -q --offline -p fbs --lib service::
timeout 300 cargo test -q --offline -p fbs --test prop_service
timeout 300 cargo test -q --offline -p powergrid --test prop_parse_hardening
timeout 300 cargo test -q --offline -p fbs-cli --test cli_commands -- deadline_and_invalid_config service_flags
E13_SMOKE=1 timeout 300 cargo run -q --offline --release -p fbs-bench --bin exp_e13_service > /dev/null

echo "== telemetry: registry/exporter suites + CLI golden traces =="
cargo test -q --offline -p telemetry
cargo test -q --offline -p fbs --lib obs::
cargo test -q --offline -p simt --lib span_export::
cargo test -q --offline -p fbs-cli --test telemetry_golden

echo "== tensor batch: engine suites + E9 smoke =="
timeout 300 cargo test -q --offline -p fbs --lib tensor_batch::
timeout 300 cargo test -q --offline --test prop_tensor_batch
E9_SMOKE=1 timeout 300 cargo run -q --offline --release -p fbs-bench --bin exp_e9_batch > /dev/null

echo "== contingency: delta-topology suites + E14 smoke =="
timeout 300 cargo test -q --offline -p fbs --lib contingency::
timeout 300 cargo test -q --offline --test prop_delta_topology
timeout 300 cargo test -q --offline -p fbs-cli --test cli_commands screen_runs_every_n_minus_1_outage
E14_SMOKE=1 timeout 300 cargo run -q --offline --release -p fbs-bench --bin exp_e14_contingency > /dev/null

echo "== fleet: multi-device resilience suites + E15 smoke + chaos replay =="
timeout 300 cargo test -q --offline -p fbs --lib fleet::
timeout 600 cargo test -q --offline -p fbs --test prop_fleet
timeout 300 cargo test -q --offline -p fbs-cli --test cli_commands fleet_replays_a_chaotic_stream
E15_SMOKE=1 timeout 600 cargo run -q --offline --release -p fbs-bench --bin exp_e15_fleet > /dev/null
cargo run -q --offline --release -p fbs-cli feeders --name ieee37 --out target/ci_fleet.grid 2> /dev/null
timeout 300 cargo run -q --offline --release -p fbs-cli fleet target/ci_fleet.grid \
  --devices 4 --requests 32 --gap 120 --kill-device 1 --batch-every 8 \
  --scenarios 96 --shard-min 16 --seed 7 > /dev/null

echo "== integrity/soak: CRC + canary + shadow-verification suites + E16 smoke =="
timeout 300 cargo test -q --offline -p simt --lib crc::
timeout 300 cargo test -q --offline -p fbs --lib integrity::
timeout 600 cargo test -q --offline -p fbs --test prop_integrity
timeout 300 cargo test -q --offline -p fbs-cli --test cli_commands soak_runs_a_storm
E16_SMOKE=1 timeout 600 cargo run -q --offline --release -p fbs-bench --bin exp_e16_soak > /dev/null 2> /dev/null
cargo run -q --offline --release -p fbs-cli feeders --name ieee37 --out target/ci_soak.grid 2> /dev/null
timeout 300 cargo run -q --offline --release -p fbs-cli soak target/ci_soak.grid \
  --requests 24 --tol 1e-12 --seed 7 > /dev/null 2> /dev/null

echo "== mesh/DG: weakly-meshed + distributed-generation suites + E17 smoke =="
timeout 300 cargo test -q --offline -p fbs --lib mesh::
timeout 600 cargo test -q --offline -p fbs --test prop_mesh
timeout 300 cargo test -q --offline -p fbs-cli --test cli_commands -- meshed_dg_feeder outer_divergence solve3_accepts_dg
E17_SMOKE=1 timeout 300 cargo run -q --offline --release -p fbs-bench --bin exp_e17_mesh > /dev/null

echo "== racecheck: device kernels under the simt race detector =="
cargo test -q --offline --features racecheck -p simt -p fbs

echo "== lint: cargo clippy -D warnings =="
cargo clippy -q --offline --all-targets -- -D warnings

echo "== ci.sh: all green =="
