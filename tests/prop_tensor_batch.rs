//! Property suite for the tensor batch engine
//! ([`fbs::TensorBatchSolver`]): the fused (level × batch) path must be
//! indistinguishable from running the serial solver once per scenario.
//!
//! Four property families, each over randomized trees and scenario sets:
//!
//! 1. **Equivalence** — per-scenario voltages match the serial solver to
//!    1e-9 V, with identical iteration counts, statuses and residuals.
//! 2. **Masking** — injected divergent/NaN scenarios are frozen early and
//!    never perturb the healthy lanes (bitwise).
//! 3. **Determinism** — results are byte-identical across repeat runs,
//!    across batch orderings, and across chunk sizes.
//! 4. **Fault recovery** — under a seeded fault plan the batched path
//!    still lands every scenario on the fault-free serial answer.

use std::cell::Cell;

use check::gen::{tuple3, tuple4, u64_any, usize_in};
use check::{checker, prop_assert, CaseResult};
use fbs::{SerialSolver, SolveStatus, SolverArrays, SolverConfig, TensorBatchSolver};
use numc::{c, Complex};
use powergrid::gen::{random_tree, GenSpec};
use powergrid::RadialNetwork;
use rng::rngs::StdRng;
use rng::{Rng, SeedableRng};
use simt::{Device, DeviceProps, FaultPlan, HostProps};

fn device() -> Device {
    Device::with_workers(DeviceProps::paper_rig(), 2)
}

fn base_loads(net: &RadialNetwork) -> Vec<Complex> {
    net.buses().iter().map(|b| b.load).collect()
}

/// Per-bus jittered load scenarios: scenario `s` scales every bus load by
/// an independent factor in `[0.5, 1.5)`, so scenarios are not mere
/// scalings of each other.
fn jittered_scenarios(net: &RadialNetwork, nb: usize, seed: u64) -> Vec<Vec<Complex>> {
    let base = base_loads(net);
    (0..nb)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(seed ^ (s as u64).wrapping_mul(0x9e37_79b9));
            base.iter().map(|&l| l * rng.gen_range(0.5..1.5)).collect()
        })
        .collect()
}

/// Serial reference for one explicit scenario: the same level-order
/// arrays with the scenario's loads substituted in.
fn serial_reference(
    a: &SolverArrays,
    scenario: &[Complex],
    cfg: &SolverConfig,
) -> fbs::SolveResult {
    let mut a2 = a.clone();
    for (p, slot) in a2.s.iter_mut().enumerate() {
        *slot = scenario[a.levels.order[p] as usize];
    }
    SerialSolver::new(HostProps::paper_rig()).solve_arrays(&a2, cfg)
}

// ---------------------------------------------------------------- family 1

/// The tensor engine mirrors the serial solver's arithmetic, so each
/// scenario must land on the serial answer — same iteration count, same
/// status, same residual, voltages within 1e-9 V.
#[test]
fn family1_tensor_batch_equals_serial_per_scenario() {
    checker("tensor_batch_equals_serial_per_scenario").cases(15).run(
        tuple3(usize_in(2..260), usize_in(1..9), u64_any()),
        |&(n, nb, seed)| -> CaseResult {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = random_tree(n, 8, &GenSpec::default(), &mut rng);
            let cfg = SolverConfig::default();
            let scenarios = jittered_scenarios(&net, nb, seed);

            let res = TensorBatchSolver::new(device()).solve(&net, &scenarios, &cfg);
            let a = SolverArrays::new(&net);
            for (s, scenario) in scenarios.iter().enumerate() {
                let serial = serial_reference(&a, scenario, &cfg);
                prop_assert!(
                    res.statuses[s] == serial.status,
                    "scenario {s}: tensor {} vs serial {}",
                    res.statuses[s],
                    serial.status
                );
                prop_assert!(
                    res.per_scenario_iterations[s] == serial.iterations,
                    "scenario {s}: tensor froze at {} iterations, serial took {}",
                    res.per_scenario_iterations[s],
                    serial.iterations
                );
                prop_assert!(
                    res.residuals[s] == serial.residual
                        || (res.residuals[s].is_nan() && serial.residual.is_nan()),
                    "scenario {s}: residual {} vs serial {}",
                    res.residuals[s],
                    serial.residual
                );
                for bus in 0..net.num_buses() {
                    let d = (res.v[s][bus] - serial.v[bus]).abs();
                    prop_assert!(
                        d < 1e-9,
                        "scenario {s} bus {bus}: |V| differs from serial by {d:.3e} V"
                    );
                }
            }
            Ok(())
        },
    );
}

/// The device-side scaled mode (`loads = base × k` synthesised on device)
/// is bitwise-equal to uploading the same scenarios explicitly.
#[test]
fn family1_scaled_mode_is_bitwise_equal_to_explicit() {
    checker("scaled_mode_is_bitwise_equal_to_explicit").cases(10).run(
        tuple3(usize_in(2..200), usize_in(1..9), u64_any()),
        |&(n, nb, seed)| -> CaseResult {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = random_tree(n, 8, &GenSpec::default(), &mut rng);
            let cfg = SolverConfig::default();
            let scales: Vec<f64> = (0..nb).map(|_| rng.gen_range(0.4..1.4)).collect();
            let base = base_loads(&net);
            let explicit_scen: Vec<Vec<Complex>> =
                scales.iter().map(|&k| base.iter().map(|&l| l * k).collect()).collect();

            let scaled = TensorBatchSolver::new(device()).solve_scaled(&net, &scales, &cfg);
            let explicit = TensorBatchSolver::new(device()).solve(&net, &explicit_scen, &cfg);
            prop_assert!(scaled.statuses == explicit.statuses, "statuses differ");
            prop_assert!(
                scaled.per_scenario_iterations == explicit.per_scenario_iterations,
                "iteration counts differ"
            );
            for s in 0..nb {
                prop_assert!(
                    scaled.v[s] == explicit.v[s] && scaled.j[s] == explicit.j[s],
                    "scenario {s}: scaled mode diverged bitwise from explicit mode"
                );
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------- family 2

/// Divergent and NaN scenarios injected at random batch positions must be
/// frozen early with failure statuses, while every healthy lane stays
/// bitwise-identical to a batch without the sick lanes.
#[test]
fn family2_masking_isolates_injected_divergence() {
    checker("masking_isolates_injected_divergence").cases(12).run(
        tuple4(usize_in(3..200), usize_in(2..7), usize_in(1..4), u64_any()),
        |&(n, healthy_nb, sick_nb, seed)| -> CaseResult {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = random_tree(n, 8, &GenSpec::default(), &mut rng);
            let cfg = SolverConfig::default();
            let healthy = jittered_scenarios(&net, healthy_nb, seed);
            let base = base_loads(&net);

            // Sick lanes: overloads far past voltage collapse, plus an
            // occasional NaN load.
            let mut sick: Vec<Vec<Complex>> = Vec::new();
            for k in 0..sick_nb {
                if k % 3 == 2 {
                    let mut s = base.clone();
                    // Never bus 0: a NaN load on the slack bus is inert
                    // (its voltage is pinned, its load never enters a
                    // voltage update), so that scenario would converge.
                    let bus = rng.gen_range(1..n);
                    s[bus] = c(f64::NAN, 0.0);
                    sick.push(s);
                } else {
                    let factor = 10f64.powi(5 + rng.gen_range(0..4usize) as i32);
                    sick.push(base.iter().map(|&l| l * factor).collect());
                }
            }

            // Interleave sick lanes at random positions.
            let mut scenarios = healthy.clone();
            let mut sick_at = Vec::new();
            for s in sick {
                let at = rng.gen_range(0..scenarios.len() + 1);
                scenarios.insert(at, s);
                for a in sick_at.iter_mut().filter(|a| **a >= at) {
                    *a += 1;
                }
                sick_at.push(at);
            }

            let clean = TensorBatchSolver::new(device()).solve(&net, &healthy, &cfg);
            let mixed = TensorBatchSolver::new(device()).solve(&net, &scenarios, &cfg);

            let mut healthy_idx = 0usize;
            for (lane, _) in scenarios.iter().enumerate() {
                if sick_at.contains(&lane) {
                    prop_assert!(
                        !mixed.statuses[lane].is_converged(),
                        "sick lane {lane} reported {}",
                        mixed.statuses[lane]
                    );
                    prop_assert!(
                        mixed.per_scenario_iterations[lane] < cfg.max_iter,
                        "sick lane {lane} burned the whole iteration budget"
                    );
                } else {
                    prop_assert!(
                        mixed.statuses[lane] == clean.statuses[healthy_idx],
                        "healthy lane {lane} status changed: {} vs {}",
                        mixed.statuses[lane],
                        clean.statuses[healthy_idx]
                    );
                    prop_assert!(
                        mixed.per_scenario_iterations[lane]
                            == clean.per_scenario_iterations[healthy_idx],
                        "healthy lane {lane} iteration count perturbed by sick lanes"
                    );
                    prop_assert!(
                        mixed.v[lane] == clean.v[healthy_idx],
                        "healthy lane {lane} voltages perturbed by sick lanes"
                    );
                    healthy_idx += 1;
                }
            }
            prop_assert!(!mixed.converged(), "a batch with sick lanes cannot be all-converged");
            prop_assert!(
                mixed.worst_status()
                    == sick_at
                        .iter()
                        .fold(SolveStatus::Converged, |w, &i| w.worse(mixed.statuses[i])),
                "worst_status must come from the sick lanes"
            );
            Ok(())
        },
    );
}

// ---------------------------------------------------------------- family 3

/// Byte-determinism: repeat runs, permuted batch orderings, and different
/// chunk sizes all produce identical bytes per scenario.
#[test]
fn family3_determinism_across_runs_orderings_and_chunks() {
    checker("determinism_across_runs_orderings_and_chunks").cases(10).run(
        tuple3(usize_in(2..180), usize_in(2..10), u64_any()),
        |&(n, nb, seed)| -> CaseResult {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = random_tree(n, 8, &GenSpec::default(), &mut rng);
            let cfg = SolverConfig::default();
            let scenarios = jittered_scenarios(&net, nb, seed);

            let run = |scen: &[Vec<Complex>], chunk: Option<usize>| {
                let mut solver = TensorBatchSolver::new(device());
                if let Some(c) = chunk {
                    solver = solver.with_chunk_scenarios(c);
                }
                solver.solve(&net, scen, &cfg)
            };

            // Repeat runs are byte-identical.
            let a = run(&scenarios, None);
            let b = run(&scenarios, None);
            prop_assert!(
                a.v == b.v && a.j == b.j && a.residuals == b.residuals,
                "two identical solves differ"
            );
            prop_assert!(a.statuses == b.statuses && a.iterations == b.iterations);

            // Chunked solves are byte-identical to unchunked.
            let chunked = run(&scenarios, Some(1 + nb / 3));
            prop_assert!(
                chunked.v == a.v && chunked.residuals == a.residuals,
                "chunking changed the results"
            );

            // A reversed batch ordering permutes the outputs and nothing
            // else — scenario identity is order-free.
            let reversed: Vec<Vec<Complex>> = scenarios.iter().rev().cloned().collect();
            let r = run(&reversed, None);
            for s in 0..nb {
                let o = nb - 1 - s;
                prop_assert!(
                    r.v[s] == a.v[o]
                        && r.j[s] == a.j[o]
                        && r.residuals[s] == a.residuals[o]
                        && r.statuses[s] == a.statuses[o]
                        && r.per_scenario_iterations[s] == a.per_scenario_iterations[o],
                    "scenario {o} changed bytes when the batch was reversed"
                );
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------- family 4

/// Seeded-fault recovery parity: with a fault plan armed, every scenario
/// must still land on the fault-free serial answer to 1e-9 V — via chunk
/// retries, the post-solve audit, or serial re-solve, whichever the
/// injected weather requires.
#[test]
fn family4_seeded_faults_cannot_corrupt_the_batch() {
    let faults_seen = Cell::new(0u64);
    checker("seeded_faults_cannot_corrupt_the_batch").cases(15).run(
        tuple3(usize_in(20..160), usize_in(2..7), u64_any()),
        |&(n, nb, seed)| -> CaseResult {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = random_tree(n, 8, &GenSpec::default(), &mut rng);
            // Tight tolerance: the serial re-solve and the device path
            // agree to well under the 1e-9 parity bound.
            let cfg = SolverConfig::new(1e-12, 200);
            let scenarios = jittered_scenarios(&net, nb, seed);

            // The tensor path issues few device ops per solve (two fused
            // launches per iteration), so the per-op rate is high to make
            // the plan actually fire.
            let mut dev = device();
            dev.arm_faults(FaultPlan::seeded(seed ^ 0xfau64, 0.03));
            let mut solver = TensorBatchSolver::new(dev);
            let res = match solver.try_solve(&net, &scenarios, &cfg) {
                Ok(r) => r,
                Err(e) => return Err(check::CaseError::fail(format!("unrecoverable: {e}"))),
            };

            if let Some(fr) = &res.fault_report {
                faults_seen.set(faults_seen.get() + u64::from(fr.faults_injected));
            }
            let a = SolverArrays::new(&net);
            for (s, scenario) in scenarios.iter().enumerate() {
                prop_assert!(
                    res.statuses[s].is_converged(),
                    "scenario {s} under faults: {}",
                    res.statuses[s]
                );
                let serial = serial_reference(&a, scenario, &cfg);
                for bus in 0..net.num_buses() {
                    let d = (res.v[s][bus] - serial.v[bus]).abs();
                    prop_assert!(
                        d < 1e-9,
                        "scenario {s} bus {bus}: faulted solve off by {d:.3e} V"
                    );
                }
            }
            Ok(())
        },
    );
    assert!(
        faults_seen.get() >= 1,
        "the seeded plans never fired — the recovery property was vacuous"
    );
}
