//! Determinism guarantees of the in-repo RNG and the solvers: the same
//! seed must produce byte-identical grids, and every solver must report
//! the same iteration count run-to-run (no hidden nondeterminism in the
//! device simulation or the scheduling of the backward sweep).

use fbs::{GpuSolver, JumpSolver, SerialSolver, SolverConfig};
use powergrid::gen::{balanced_binary, random_tree, GenSpec};
use powergrid::gridfile::write_grid;
use powergrid::gridfile3::write_grid3;
use powergrid::three_phase::from_single_phase;
use rng::rngs::StdRng;
use rng::SeedableRng;
use simt::{Device, DeviceProps, HostProps};

const SEED: u64 = 0xFEED_5EED;

#[test]
fn same_seed_yields_byte_identical_gridfile() {
    let gen = || {
        let mut rng = StdRng::seed_from_u64(SEED);
        random_tree(700, 12, &GenSpec::default(), &mut rng)
    };
    let a = write_grid(&gen());
    let b = write_grid(&gen());
    assert_eq!(a, b, ".grid serialization must be byte-identical across runs");
    assert!(!a.is_empty());
}

#[test]
fn same_seed_yields_byte_identical_grid3file() {
    let gen = || {
        let mut rng = StdRng::seed_from_u64(SEED);
        let net = balanced_binary(127, &GenSpec::default(), &mut rng);
        from_single_phase(&net, 0.3, 0.25, &mut rng)
    };
    assert_eq!(
        write_grid3(&gen()),
        write_grid3(&gen()),
        ".grid3 serialization must be byte-identical across runs"
    );
}

#[test]
fn different_seeds_yield_different_grids() {
    let gen = |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        write_grid(&random_tree(700, 12, &GenSpec::default(), &mut rng))
    };
    assert_ne!(gen(1), gen(2), "distinct seeds must not collide on a 700-bus grid");
}

#[test]
fn solver_iteration_counts_are_reproducible() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let net = random_tree(400, 8, &GenSpec::default(), &mut rng);
    let cfg = SolverConfig::default();

    let serial = |net: &_| SerialSolver::new(HostProps::paper_rig()).solve(net, &cfg);
    let gpu = |net: &_| GpuSolver::new(Device::new(DeviceProps::paper_rig())).solve(net, &cfg);
    let jump = |net: &_| JumpSolver::new(Device::new(DeviceProps::paper_rig())).solve(net, &cfg);

    for (who, solve) in [
        ("serial", &serial as &dyn Fn(&_) -> _),
        ("gpu", &gpu),
        ("jump", &jump),
    ] {
        let first = solve(&net);
        let second = solve(&net);
        assert!(first.converged(), "{who} must converge");
        assert_eq!(
            first.iterations, second.iterations,
            "{who}: iteration count must be reproducible run-to-run"
        );
        for bus in 0..net.buses().len() {
            assert_eq!(
                first.v[bus], second.v[bus],
                "{who}: bus {bus} voltage must be bit-identical run-to-run"
            );
        }
    }
}
