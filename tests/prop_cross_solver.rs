//! Property tests: on arbitrary radial topologies and loadings, the GPU
//! solver agrees with the serial reference bus-for-bus, and physics
//! validation holds whenever the solve converges.

use fbs::{BackwardStrategy, GpuSolver, SerialSolver, SolverConfig};
use powergrid::gen::{from_parent_fn, GenSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simt::{Device, DeviceProps, HostProps};

/// Strategy: a random tree described by parent offsets (parent of bus i
/// is a uniformly random earlier bus within a window), with random
/// moderate loading.
fn arbitrary_tree() -> impl Strategy<Value = (usize, u64, usize, f64)> {
    (2usize..600, any::<u64>(), 1usize..32, 0.3f64..1.5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gpu_matches_serial_on_arbitrary_trees(
        (n, seed, window, load_scale) in arbitrary_tree()
    ) {
        let mut spec = GenSpec::default();
        spec.total_kw *= load_scale;
        let mut rng = StdRng::seed_from_u64(seed);
        // Parent function: mirrors powergrid::gen::random_tree but with
        // the proptest-driven seed/window.
        let parents: Vec<usize> = (0..n)
            .map(|i| {
                if i == 0 { usize::MAX } else {
                    let lo = i.saturating_sub(window);
                    lo + (seed.wrapping_mul(i as u64 * 2654435761 + 17) % (i - lo).max(1) as u64) as usize
                }
            })
            .collect();
        let net = from_parent_fn(n, &spec, &mut rng, |i| (i > 0).then(|| parents[i]));

        let cfg = SolverConfig::default();
        let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
        let mut gpu = GpuSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2));
        let par = gpu.solve(&net, &cfg);

        prop_assert_eq!(serial.converged, par.converged);
        prop_assert_eq!(serial.iterations, par.iterations);
        if serial.converged {
            let scale = net.source_voltage().abs();
            for bus in 0..n {
                prop_assert!(
                    (serial.v[bus] - par.v[bus]).abs() < 1e-8 * scale,
                    "bus {}: {:?} vs {:?}", bus, serial.v[bus], par.v[bus]
                );
            }
            fbs::validate::assert_physical(&net, &par, 1e-4);
        }
    }

    #[test]
    fn backward_strategies_agree(
        (n, seed, window, _) in arbitrary_tree()
    ) {
        let spec = GenSpec::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let parents: Vec<usize> = (0..n)
            .map(|i| if i == 0 { usize::MAX } else { i.saturating_sub(1 + (seed as usize + i) % window.min(i)) })
            .collect();
        let net = from_parent_fn(n, &spec, &mut rng, |i| (i > 0).then(|| parents[i]));

        let cfg = SolverConfig::default();
        let a = GpuSolver::with_strategy(
            Device::with_workers(DeviceProps::paper_rig(), 2),
            BackwardStrategy::SegScan,
        )
        .solve(&net, &cfg);
        let b = GpuSolver::with_strategy(
            Device::with_workers(DeviceProps::paper_rig(), 2),
            BackwardStrategy::Direct,
        )
        .solve(&net, &cfg);
        prop_assert_eq!(a.converged, b.converged);
        let scale = net.source_voltage().abs();
        for bus in 0..n {
            prop_assert!((a.v[bus] - b.v[bus]).abs() < 1e-8 * scale);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Three-phase GPU vs serial on random phase-expanded trees.
    #[test]
    fn three_phase_gpu_matches_serial(
        n in 2usize..300,
        seed in any::<u64>(),
        unbalance in 0.0f64..0.6,
    ) {
        use fbs::{Gpu3Solver, Serial3Solver};
        use powergrid::three_phase::from_single_phase;

        let mut rng = StdRng::seed_from_u64(seed);
        let net1 = powergrid::gen::random_tree(n, 8, &GenSpec::default(), &mut rng);
        let net3 = from_single_phase(&net1, unbalance, 0.25, &mut rng);

        let cfg = SolverConfig::default();
        let s = Serial3Solver::new(HostProps::paper_rig()).solve(&net3, &cfg);
        let mut gpu = Gpu3Solver::new(Device::with_workers(DeviceProps::paper_rig(), 2));
        let g = gpu.solve(&net3, &cfg);
        prop_assert_eq!(s.converged, g.converged);
        if s.converged {
            let scale = net3.source_voltage().abs_max();
            for bus in 0..n {
                for (x, y) in s.v[bus].phases().iter().zip(g.v[bus].phases()) {
                    prop_assert!((*x - y).abs() < 1e-8 * scale, "bus {}", bus);
                }
            }
        }
    }
}
