//! Property tests: on arbitrary radial topologies and loadings, the GPU
//! solver agrees with the serial reference bus-for-bus, and physics
//! validation holds whenever the solve converges.

use check::gen::{f64_in, tuple3, tuple4, u64_any, usize_in, Gen};
use check::{checker, prop_assert, prop_assert_eq, CaseResult};
use fbs::{BackwardStrategy, GpuSolver, SerialSolver, SolverConfig};
use powergrid::gen::{from_parent_fn, GenSpec};
use rng::rngs::StdRng;
use rng::SeedableRng;
use simt::{Device, DeviceProps, HostProps};

/// Generator: a random tree described by parent offsets (parent of bus i
/// is a uniformly random earlier bus within a window), with random
/// moderate loading.
fn arbitrary_tree() -> Gen<(usize, u64, usize, f64)> {
    tuple4(usize_in(2..600), u64_any(), usize_in(1..32), f64_in(0.3..1.5))
}

#[test]
fn gpu_matches_serial_on_arbitrary_trees() {
    checker("gpu_matches_serial_on_arbitrary_trees").cases(24).run(
        arbitrary_tree(),
        |&(n, seed, window, load_scale)| -> CaseResult {
            let mut spec = GenSpec::default();
            spec.total_kw *= load_scale;
            let mut rng = StdRng::seed_from_u64(seed);
            // Parent function: mirrors powergrid::gen::random_tree but with
            // the harness-driven seed/window.
            let parents: Vec<usize> = (0..n)
                .map(|i| {
                    if i == 0 {
                        usize::MAX
                    } else {
                        let lo = i.saturating_sub(window);
                        lo + (seed.wrapping_mul(i as u64 * 2654435761 + 17)
                            % (i - lo).max(1) as u64) as usize
                    }
                })
                .collect();
            let net = from_parent_fn(n, &spec, &mut rng, |i| (i > 0).then(|| parents[i]));

            let cfg = SolverConfig::default();
            let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
            let mut gpu = GpuSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2));
            let par = gpu.solve(&net, &cfg);

            prop_assert_eq!(serial.converged(), par.converged());
            prop_assert_eq!(serial.iterations, par.iterations);
            if serial.converged() {
                let scale = net.source_voltage().abs();
                for bus in 0..n {
                    prop_assert!(
                        (serial.v[bus] - par.v[bus]).abs() < 1e-8 * scale,
                        "bus {}: {:?} vs {:?}",
                        bus,
                        serial.v[bus],
                        par.v[bus]
                    );
                }
                fbs::validate::assert_physical(&net, &par, 1e-4);
            }
            Ok(())
        },
    );
}

#[test]
fn backward_strategies_agree() {
    checker("backward_strategies_agree").cases(24).run(
        arbitrary_tree(),
        |&(n, seed, window, _)| -> CaseResult {
            let spec = GenSpec::default();
            let mut rng = StdRng::seed_from_u64(seed);
            let parents: Vec<usize> = (0..n)
                .map(|i| {
                    if i == 0 {
                        usize::MAX
                    } else {
                        i.saturating_sub(1 + (seed as usize + i) % window.min(i))
                    }
                })
                .collect();
            let net = from_parent_fn(n, &spec, &mut rng, |i| (i > 0).then(|| parents[i]));

            let cfg = SolverConfig::default();
            let a = GpuSolver::with_strategy(
                Device::with_workers(DeviceProps::paper_rig(), 2),
                BackwardStrategy::SegScan,
            )
            .solve(&net, &cfg);
            let b = GpuSolver::with_strategy(
                Device::with_workers(DeviceProps::paper_rig(), 2),
                BackwardStrategy::Direct,
            )
            .solve(&net, &cfg);
            prop_assert_eq!(a.converged(), b.converged());
            let scale = net.source_voltage().abs();
            for bus in 0..n {
                prop_assert!((a.v[bus] - b.v[bus]).abs() < 1e-8 * scale);
            }
            Ok(())
        },
    );
}

/// Three-phase GPU vs serial on random phase-expanded trees.
#[test]
fn three_phase_gpu_matches_serial() {
    checker("three_phase_gpu_matches_serial").cases(16).run(
        tuple3(usize_in(2..300), u64_any(), f64_in(0.0..0.6)),
        |&(n, seed, unbalance)| -> CaseResult {
            use fbs::{Gpu3Solver, Serial3Solver};
            use powergrid::three_phase::from_single_phase;

            let mut rng = StdRng::seed_from_u64(seed);
            let net1 = powergrid::gen::random_tree(n, 8, &GenSpec::default(), &mut rng);
            let net3 = from_single_phase(&net1, unbalance, 0.25, &mut rng);

            let cfg = SolverConfig::default();
            let s = Serial3Solver::new(HostProps::paper_rig()).solve(&net3, &cfg);
            let mut gpu = Gpu3Solver::new(Device::with_workers(DeviceProps::paper_rig(), 2));
            let g = gpu.solve(&net3, &cfg);
            prop_assert_eq!(s.converged(), g.converged());
            if s.converged() {
                let scale = net3.source_voltage().abs_max();
                for bus in 0..n {
                    for (x, y) in s.v[bus].phases().iter().zip(g.v[bus].phases()) {
                        prop_assert!((*x - y).abs() < 1e-8 * scale, "bus {}", bus);
                    }
                }
            }
            Ok(())
        },
    );
}
