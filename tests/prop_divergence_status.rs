//! Convergence-status hardening: no solver may ever report
//! [`fbs::SolveStatus::Converged`] while holding non-finite state, a
//! crafted voltage collapse is classified identically by every solver,
//! and a batch masks a sick scenario out instead of letting it poison
//! the batch-wide reduction.

use check::gen::{tuple3, u64_any, usize_in, Gen};
use check::{checker, prop_assert, CaseResult};
use fbs::{
    BackwardStrategy, BatchSolver, GpuSolver, JumpSolver, MulticoreSolver, SerialSolver,
    SolveResult, SolveStatus, SolverConfig,
};
use numc::{c, Complex};
use powergrid::gen::{random_tree, GenSpec};
use powergrid::{NetworkBuilder, RadialNetwork};
use rng::rngs::StdRng;
use rng::SeedableRng;
use simt::{Device, DeviceProps, HostProps};

fn device() -> Device {
    Device::with_workers(DeviceProps::paper_rig(), 2)
}

/// Runs every single-scenario solver on `net` and returns labeled results.
fn all_solvers(net: &RadialNetwork, cfg: &SolverConfig) -> Vec<(&'static str, SolveResult)> {
    vec![
        ("serial", SerialSolver::new(HostProps::paper_rig()).solve(net, cfg)),
        ("multicore", MulticoreSolver::new(HostProps::paper_rig(), 8).solve(net, cfg)),
        ("gpu-segscan", GpuSolver::with_strategy(device(), BackwardStrategy::SegScan).solve(net, cfg)),
        ("gpu-direct", GpuSolver::with_strategy(device(), BackwardStrategy::Direct).solve(net, cfg)),
        (
            "gpu-atomic",
            GpuSolver::with_strategy(device(), BackwardStrategy::AtomicScatter).solve(net, cfg),
        ),
        ("gpu-jump", JumpSolver::new(device()).solve(net, cfg)),
    ]
}

/// The 2-bus feeder whose load bus lands on exactly 0 V after one
/// iteration, so iteration 2 divides by zero (V₀ = 100 V, Z = 10 Ω,
/// S = 1000 VA, all real).
fn collapse_net() -> RadialNetwork {
    let mut b = NetworkBuilder::new(c(100.0, 0.0));
    b.add_bus(Complex::ZERO);
    b.add_bus(c(1000.0, 0.0));
    b.connect(0, 1, c(10.0, 0.0));
    b.build().unwrap()
}

/// Generator: tree shape plus an overload factor spanning "heavy but
/// feasible" through "far past the voltage-collapse point".
fn overloaded_tree() -> Gen<(usize, u64, usize)> {
    tuple3(usize_in(2..300), u64_any(), usize_in(0..7))
}

#[test]
fn converged_always_means_finite_state() {
    checker("converged_always_means_finite_state").cases(20).run(
        overloaded_tree(),
        |&(n, seed, overload_exp)| -> CaseResult {
            let mut spec = GenSpec::default();
            // 1×, 4×, 16×, … 4096× nominal loading: the tail is far past
            // any operating point FBS can converge to.
            spec.total_kw *= 4f64.powi(overload_exp as i32);
            let mut rng = StdRng::seed_from_u64(seed);
            let net = random_tree(n, 8, &spec, &mut rng);
            let cfg = SolverConfig::default();

            for (who, res) in all_solvers(&net, &cfg) {
                if res.status == SolveStatus::Converged {
                    prop_assert!(
                        res.residual.is_finite(),
                        "{who}: converged with residual {}",
                        res.residual
                    );
                    prop_assert!(
                        res.v.iter().chain(&res.j).all(|z| z.re.is_finite() && z.im.is_finite()),
                        "{who}: converged with non-finite voltage or current"
                    );
                } else {
                    // The early-abort must actually abort early: a
                    // diverging or NaN solve never burns the whole
                    // iteration budget.
                    if matches!(
                        res.status,
                        SolveStatus::Diverged { .. } | SolveStatus::NumericalFailure { .. }
                    ) {
                        prop_assert!(
                            res.iterations < cfg.max_iter,
                            "{who}: {} but ran all {} iterations",
                            res.status,
                            res.iterations
                        );
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn crafted_collapse_is_numerical_failure_in_every_solver() {
    let net = collapse_net();
    // Disarm the growth cap so only the NaN path can fire; every solver
    // must then report the same numerical failure at the same iteration.
    let cfg = SolverConfig::new(1e-9, 50).with_divergence(1e300, 50);
    let mut statuses = Vec::new();
    for (who, res) in all_solvers(&net, &cfg) {
        assert!(
            matches!(res.status, SolveStatus::NumericalFailure { .. }),
            "{who}: collapse through V=0 must be a numerical failure, got {}",
            res.status
        );
        assert!(!res.residual.is_finite(), "{who}: the corrupt residual must be surfaced");
        statuses.push((who, res.status));
    }
    let (first_who, first) = statuses[0];
    for (who, s) in &statuses[1..] {
        assert_eq!(*s, first, "{who} disagrees with {first_who} on the collapse status");
    }

    // With the default divergence cap armed, the huge first-iteration
    // swing on a 10 MVA variant is caught even before NaN appears.
    let mut b = NetworkBuilder::new(c(100.0, 0.0));
    b.add_bus(Complex::ZERO);
    b.add_bus(c(1e7, 0.0));
    b.connect(0, 1, c(10.0, 0.0));
    let hot = b.build().unwrap();
    for (who, res) in all_solvers(&hot, &SolverConfig::default()) {
        assert!(
            matches!(
                res.status,
                SolveStatus::Diverged { .. } | SolveStatus::NumericalFailure { .. }
            ),
            "{who}: 10 MVA on a 100 V bus must diverge, got {}",
            res.status
        );
        assert!(!res.status.is_converged());
    }
}

#[test]
fn batch_masks_the_sick_scenario_and_converges_the_rest() {
    let mut rng = StdRng::seed_from_u64(41);
    let net = random_tree(120, 8, &GenSpec::default(), &mut rng);
    let cfg = SolverConfig::default();

    let base: Vec<Complex> = net.buses().iter().map(|b| b.load).collect();
    let healthy: Vec<Vec<Complex>> =
        [0.6, 0.9, 1.2].iter().map(|&sc| base.iter().map(|&s| s * sc).collect()).collect();

    // Baseline: healthy scenarios alone.
    let mut solver = BatchSolver::new(device());
    let clean = solver.solve(&net, &healthy, &cfg);
    assert!(clean.converged(), "baseline batch must converge: {:?}", clean.statuses);

    // Same batch plus one scenario loaded ~10⁶× past collapse.
    let mut scenarios = healthy.clone();
    scenarios.push(base.iter().map(|&s| s * 1e6).collect());
    let mut solver = BatchSolver::new(device());
    let mixed = solver.solve(&net, &scenarios, &cfg);

    for s in 0..3 {
        assert_eq!(
            mixed.statuses[s],
            SolveStatus::Converged,
            "healthy scenario {s} must still converge: {:?}",
            mixed.statuses
        );
    }
    assert!(
        !mixed.statuses[3].is_converged(),
        "the overloaded scenario must be flagged, got {}",
        mixed.statuses[3]
    );
    assert!(!mixed.converged());
    assert_eq!(mixed.worst_status(), mixed.statuses[3]);

    // Masking means the sick scenario does not drag the batch to
    // max_iter, and the healthy lanes are untouched by it.
    assert_eq!(
        mixed.iterations, clean.iterations,
        "masked batch must converge in the baseline iteration count"
    );
    let v0 = net.source_voltage().abs();
    for s in 0..3 {
        for bus in 0..net.num_buses() {
            let d = (mixed.v[s][bus] - clean.v[s][bus]).abs();
            assert!(d < 1e-9 * v0, "scenario {s} bus {bus} perturbed by the masked lane: {d}");
        }
    }
}

#[test]
fn batch_flags_nan_loads_as_numerical_failure() {
    let mut rng = StdRng::seed_from_u64(43);
    let net = random_tree(60, 8, &GenSpec::default(), &mut rng);
    let cfg = SolverConfig::default();

    let base: Vec<Complex> = net.buses().iter().map(|b| b.load).collect();
    let mut sick = base.clone();
    sick[7] = c(f64::NAN, 0.0);
    let scenarios = vec![base, sick];

    let mut solver = BatchSolver::new(device());
    let res = solver.solve(&net, &scenarios, &cfg);
    assert_eq!(res.statuses[0], SolveStatus::Converged, "{:?}", res.statuses);
    assert!(
        matches!(res.statuses[1], SolveStatus::NumericalFailure { .. }),
        "NaN load must be a numerical failure, got {}",
        res.statuses[1]
    );
    assert_eq!(res.worst_status(), res.statuses[1]);
}
