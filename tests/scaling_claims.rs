//! The paper's evaluation claims, encoded as tests on the calibrated
//! models (small-to-mid sizes so the suite stays fast; the full-scale
//! numbers live in the `fbs-bench` experiment binaries).

use fbs::{GpuSolver, SerialSolver, SolverConfig};
use powergrid::gen::{balanced_binary, chain, star, GenSpec};
use powergrid::LevelOrder;
use rng::rngs::StdRng;
use rng::SeedableRng;
use simt::{Device, DeviceProps, HostProps};

fn solve_pair(n: usize, seed: u64) -> (f64, f64, f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = balanced_binary(n, &GenSpec::default(), &mut rng);
    let cfg = SolverConfig::default();
    let s = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
    let mut gpu = GpuSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2));
    let g = gpu.solve(&net, &cfg);
    assert!(s.converged() && g.converged());
    (
        s.timing.total_us(),
        g.timing.total_us(),
        s.timing.phases.sweep_us(),
        g.timing.sweep_kernel_us(),
    )
}

/// Abstract: "for the parts of the computation that entirely run on the
/// GPU, larger speedups are achieved as the size of the distribution
/// tree increases."
#[test]
fn kernel_only_speedup_grows_with_tree_size() {
    let mut last = 0.0;
    for (i, n) in [1024usize, 4096, 16_384, 65_536].into_iter().enumerate() {
        let (_, _, s_sweep, g_sweep) = solve_pair(n, 1000 + i as u64);
        let x = s_sweep / g_sweep;
        assert!(
            x > last,
            "sweep speedup must grow with n: {x:.4} at n={n} (prev {last:.4})"
        );
        last = x;
    }
}

/// Small trees are launch/transfer-bound: the GPU must *lose* at 1K —
/// the honest flip side of the paper's scaling claim.
#[test]
fn small_trees_favor_the_cpu() {
    let (s_total, g_total, _, _) = solve_pair(1024, 11);
    assert!(
        g_total > 5.0 * s_total,
        "1K-bus trees must be launch-overhead-bound on the GPU: {s_total:.1} vs {g_total:.1}"
    );
}

/// Total speedup improves monotonically over the paper's size range.
#[test]
fn total_speedup_is_monotone_in_size() {
    let mut last = 0.0;
    for (i, n) in [2048usize, 8192, 32_768].into_iter().enumerate() {
        let (s_total, g_total, _, _) = solve_pair(n, 2000 + i as u64);
        let x = s_total / g_total;
        assert!(x > last, "total speedup must grow: {x:.4} at n={n}");
        last = x;
    }
}

/// Topology claim: at fixed n, the GPU ranking follows mean level width
/// (star > binary > chain).
#[test]
fn topology_ordering_matches_mean_level_width() {
    let n = 8192;
    let spec = GenSpec::default();
    let cfg = SolverConfig::default();
    let mut results = Vec::new();
    for (name, net) in [
        ("chain", chain(n, &spec, &mut StdRng::seed_from_u64(31))),
        ("binary", balanced_binary(n, &spec, &mut StdRng::seed_from_u64(32))),
        ("star", star(n, &spec, &mut StdRng::seed_from_u64(33))),
    ] {
        let levels = LevelOrder::new(&net);
        let s = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
        let mut gpu = GpuSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2));
        let g = gpu.solve(&net, &cfg);
        assert!(s.converged() && g.converged(), "{name}");
        // Per-iteration GPU time normalises away iteration-count noise.
        let per_iter = g.timing.phases.sweep_us() / g.iterations as f64;
        results.push((name, levels.mean_level_width(), per_iter));
    }
    // Wider mean level → cheaper GPU iteration.
    assert!(results[0].1 < results[1].1 && results[1].1 < results[2].1);
    assert!(
        results[0].2 > results[1].2 && results[1].2 > results[2].2,
        "per-iteration GPU time must fall as mean level width grows: {results:?}"
    );
}

/// The breakdown mechanism: transfers take a growing *absolute* time but
/// the backward sweep stays the dominant kernel phase on binary trees.
#[test]
fn backward_sweep_dominates_kernel_time_on_binary_trees() {
    let mut rng = StdRng::seed_from_u64(55);
    let net = balanced_binary(16_384, &GenSpec::default(), &mut rng);
    let mut gpu = GpuSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2));
    let g = gpu.solve(&net, &SolverConfig::default());
    let p = g.timing.phases;
    assert!(p.backward_us > p.forward_us, "backward does strictly more launches than forward");
    assert!(p.backward_us > p.injection_us);
    assert!(p.backward_us > p.convergence_us);
}
