//! Full-scale soak test: the paper's largest workload (256K buses),
//! solved by every solver, cross-checked and physics-validated.
//!
//! `#[ignore]`d because it takes minutes in debug builds; run it with
//! `cargo test --release --test soak_full_scale -- --ignored`.

use fbs::{GpuSolver, JumpSolver, MulticoreSolver, SerialSolver, SolverArrays, SolverConfig};
use powergrid::gen::{balanced_binary, GenSpec};
use rng::rngs::StdRng;
use rng::SeedableRng;
use simt::{Device, DeviceProps, HostProps};

#[test]
#[ignore = "full 256K-bus sweep; run with --release -- --ignored"]
fn all_solvers_agree_at_256k() {
    let mut rng = StdRng::seed_from_u64(256_000);
    let net = balanced_binary(262_144, &GenSpec::default(), &mut rng);
    let arrays = SolverArrays::new(&net);
    let cfg = SolverConfig::default();

    let serial = SerialSolver::new(HostProps::paper_rig()).solve_arrays(&arrays, &cfg);
    assert!(serial.converged());
    fbs::validate::assert_physical(&net, &serial, 1e-4);

    let multicore = MulticoreSolver::new(HostProps::paper_rig(), 8).solve_arrays(&arrays, &cfg);
    let mut gpu = GpuSolver::new(Device::new(DeviceProps::paper_rig()));
    let level = gpu.solve_arrays(&arrays, &cfg);
    let mut jump = JumpSolver::new(Device::new(DeviceProps::paper_rig()));
    let jumped = jump.solve(&net, &cfg);

    let tol_v = cfg.tol_volts(net.source_voltage().abs());
    for (name, res) in [("multicore", &multicore), ("level-gpu", &level), ("jump-gpu", &jumped)] {
        assert!(res.converged(), "{name} must converge");
        fbs::validate::assert_physical(&net, res, 1e-4);
        let worst = (0..net.num_buses())
            .map(|b| (res.v[b] - serial.v[b]).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 20.0 * tol_v, "{name} diverges from serial by {worst} V");
    }

    // The headline numbers hold at full scale.
    let total_x = serial.timing.total_us() / level.timing.total_us();
    assert!(total_x > 2.5, "total speedup at 256K must exceed 2.5x, got {total_x:.2}");
}
