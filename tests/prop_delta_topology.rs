//! Property suite for delta-topology solves ([`powergrid::TopologyDelta`]
//! plus the patched tensor path): editing a network in place and solving
//! the delta must be indistinguishable from rebuilding it from scratch.
//!
//! Four property families, each over randomized trees and deltas:
//!
//! 1. **Revertibility** — `apply` then `revert` restores the original
//!    network *bitwise* (every load, branch endpoint and impedance),
//!    for every delta kind, including repeated cycles.
//! 2. **Equivalence** — solving a delta-applied network equals solving a
//!    from-scratch rebuild of the same topology to 1e-9 V.
//! 3. **Warm starts** — seeding a post-delta solve from the base-case
//!    profile lands on the same voltages (within tolerance) in no more
//!    iterations than a cold start.
//! 4. **Screening parity** — a batch of outage patches solved on the
//!    tensor engine matches per-outage serial re-solves: same statuses
//!    and iteration counts, energized voltages to 1e-9 V, de-energized
//!    buses pinned at exactly 0.

use check::gen::{tuple3, u64_any, usize_in};
use check::{checker, prop_assert, CaseResult};
use fbs::{ScenarioPatch, SerialSolver, SolverArrays, SolverConfig, TensorBatchSolver};
use numc::{c, Complex};
use powergrid::gen::{random_tree, GenSpec};
use powergrid::{DeltaOp, NetworkBuilder, RadialNetwork, TopologyDelta};
use rng::rngs::StdRng;
use rng::{Rng, SeedableRng};
use simt::{Device, DeviceProps, HostProps};

fn device() -> Device {
    Device::with_workers(DeviceProps::paper_rig(), 2)
}

/// Every bit of observable network state, as raw words: source voltage,
/// per-bus loads, per-branch endpoints and impedances.
fn fingerprint(net: &RadialNetwork) -> Vec<u64> {
    let mut bits = vec![
        net.source_voltage().re.to_bits(),
        net.source_voltage().im.to_bits(),
        net.root() as u64,
    ];
    for b in net.buses() {
        bits.push(b.load.re.to_bits());
        bits.push(b.load.im.to_bits());
    }
    for br in net.branches() {
        bits.push(br.from as u64);
        bits.push(br.to as u64);
        bits.push(br.z.re.to_bits());
        bits.push(br.z.im.to_bits());
    }
    bits
}

/// A random valid delta for `net`, drawn from all three kinds.
fn random_delta(net: &RadialNetwork, rng: &mut StdRng) -> TopologyDelta {
    let n = net.num_buses();
    let root = net.root();
    loop {
        let bus = rng.gen_range(0..n);
        if bus == root {
            continue;
        }
        match rng.gen_range(0..3u32) {
            0 => return TopologyDelta::outage(net, bus).unwrap(),
            1 => {
                let z = c(rng.gen_range(0.05..2.0), rng.gen_range(-0.5..1.5));
                return TopologyDelta::impedance(net, bus, z).unwrap();
            }
            _ => {
                // A splice needs a new parent outside the moved subtree;
                // retry the whole draw when the candidate is inside it.
                let new_parent = rng.gen_range(0..n);
                let z = c(rng.gen_range(0.05..2.0), rng.gen_range(0.0..1.5));
                if let Ok(d) = TopologyDelta::splice(net, bus, new_parent, z) {
                    return d;
                }
            }
        }
    }
}

/// A from-scratch rebuild of `net` as it currently stands (post-delta):
/// same buses, same branches, fed through `NetworkBuilder` validation.
fn rebuild(net: &RadialNetwork) -> RadialNetwork {
    let mut b = NetworkBuilder::new(net.source_voltage());
    for bus in net.buses() {
        b.add_bus(bus.load);
    }
    for br in net.branches() {
        b.connect(br.from, br.to, br.z);
    }
    b.build().expect("a delta-applied network must still be a valid radial network")
}

// ---------------------------------------------------------------- family 1

/// `apply` + `revert` restores the original network bitwise, and the
/// cycle is repeatable.
#[test]
fn family1_apply_revert_is_bitwise_identity() {
    checker("apply_revert_is_bitwise_identity").cases(25).run(
        tuple3(usize_in(2..300), usize_in(1..4), u64_any()),
        |&(n, cycles, seed)| -> CaseResult {
            let mut rng = StdRng::seed_from_u64(seed);
            let original = random_tree(n, 6, &GenSpec::default(), &mut rng);
            let before = fingerprint(&original);

            let mut net = original.clone();
            let mut delta = random_delta(&net, &mut rng);
            for cycle in 0..cycles {
                delta.apply(&mut net).expect("apply");
                if !matches!(delta.op(), DeltaOp::Outage { .. }) {
                    prop_assert!(
                        fingerprint(&net) != before,
                        "cycle {cycle}: applying {:?} changed nothing",
                        delta.op()
                    );
                }
                delta.revert(&mut net).expect("revert");
                prop_assert!(
                    fingerprint(&net) == before,
                    "cycle {cycle}: revert of {:?} is not bitwise",
                    delta.op()
                );
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------- family 2

/// Solving the delta-applied network is indistinguishable (1e-9 V) from
/// solving a from-scratch rebuild of the same topology.
#[test]
fn family2_delta_solve_equals_rebuild_solve() {
    checker("delta_solve_equals_rebuild_solve").cases(20).run(
        tuple3(usize_in(2..300), usize_in(1..5), u64_any()),
        |&(n, deltas, seed)| -> CaseResult {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut net = random_tree(n, 6, &GenSpec::default(), &mut rng);
            let cfg = SolverConfig::default();
            // A chain of deltas (applied, never reverted) stresses the
            // in-place path against accumulated edits.
            for _ in 0..deltas {
                let mut d = random_delta(&net, &mut rng);
                d.apply(&mut net).expect("apply");
            }

            let serial = SerialSolver::new(HostProps::paper_rig());
            let direct = serial.solve(&net, &cfg);
            let rebuilt = serial.solve(&rebuild(&net), &cfg);
            prop_assert!(
                direct.status == rebuilt.status && direct.iterations == rebuilt.iterations,
                "delta-applied solve ({}, {} iters) vs rebuild ({}, {} iters)",
                direct.status,
                direct.iterations,
                rebuilt.status,
                rebuilt.iterations
            );
            for bus in 0..net.num_buses() {
                let d = (direct.v[bus] - rebuilt.v[bus]).abs();
                prop_assert!(d < 1e-9, "bus {bus}: delta vs rebuild differ by {d:.3e} V");
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------- family 3

/// A warm start from the base-case profile lands within solver tolerance
/// of the cold answer and is at worst one iteration behind — when the
/// delta sheds most of the load (an outage near the root), the flat
/// start can coincidentally sit *closer* to the new fixed point than the
/// sagging base profile, so strict `warm <= cold` is not a law. It must
/// still hold in the overwhelming majority of cases.
#[test]
fn family3_warm_start_costs_no_iterations() {
    let total = std::cell::Cell::new(0usize);
    let no_worse = std::cell::Cell::new(0usize);
    checker("warm_start_costs_no_iterations").cases(20).run(
        tuple3(usize_in(3..300), usize_in(1..3), u64_any()),
        |&(n, deltas, seed)| -> CaseResult {
            let mut rng = StdRng::seed_from_u64(seed);
            let base_net = random_tree(n, 6, &GenSpec::default(), &mut rng);
            let cfg = SolverConfig::default().with_warm_start();
            let serial = SerialSolver::new(HostProps::paper_rig());
            let base = serial.solve(&base_net, &cfg);
            prop_assert!(base.status.is_converged(), "base case must converge");

            let mut net = base_net.clone();
            for _ in 0..deltas {
                let mut d = random_delta(&net, &mut rng);
                d.apply(&mut net).expect("apply");
            }
            let a = SolverArrays::new(&net);
            let cold = serial.solve_arrays(&a, &cfg);
            let warm = serial.solve_warm(&a, &cfg, Some(&base.v));
            prop_assert!(
                warm.status == cold.status,
                "warm {} vs cold {}",
                warm.status,
                cold.status
            );
            total.set(total.get() + 1);
            if warm.iterations <= cold.iterations {
                no_worse.set(no_worse.get() + 1);
            }
            prop_assert!(
                warm.iterations <= cold.iterations + 1,
                "warm start took {} iterations, cold took {}",
                warm.iterations,
                cold.iterations
            );
            // Both stop within tol of the same fixed point, approached
            // along different paths.
            let tol = 2.0 * cfg.tol_volts(net.source_voltage().abs());
            for bus in 0..net.num_buses() {
                let d = (warm.v[bus] - cold.v[bus]).abs();
                prop_assert!(d < tol, "bus {bus}: warm vs cold differ by {d:.3e} V");
            }
            Ok(())
        },
    );
    assert!(
        no_worse.get() * 4 >= total.get() * 3,
        "warm start must cost no iterations in >=75% of cases ({}/{})",
        no_worse.get(),
        total.get()
    );
}

// ---------------------------------------------------------------- family 4

/// A batch of outage patches on the tensor engine matches classical
/// per-outage re-solves (delta apply → serial solve → revert), with
/// de-energized buses reported at exactly 0.
#[test]
fn family4_screened_batch_equals_per_outage_serial() {
    checker("screened_batch_equals_per_outage_serial").cases(12).run(
        tuple3(usize_in(3..220), usize_in(1..7), u64_any()),
        |&(n, nb, seed)| -> CaseResult {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = random_tree(n, 6, &GenSpec::default(), &mut rng);
            let cfg = SolverConfig::default();
            let root = net.root();
            let buses: Vec<usize> =
                (0..nb).map(|_| loop {
                    let b = rng.gen_range(0..n);
                    if b != root {
                        break b;
                    }
                }).collect();
            let patches: Vec<ScenarioPatch> =
                buses.iter().map(|&b| ScenarioPatch::outage(b)).collect();
            let batched =
                TensorBatchSolver::new(device()).solve_patched(&net, &patches, &cfg, None);

            let serial = SerialSolver::new(HostProps::paper_rig());
            let mut work = net.clone();
            for (s, &bus) in buses.iter().enumerate() {
                let mut delta = TopologyDelta::outage(&work, bus).expect("outage");
                delta.apply(&mut work).expect("apply");
                let reference = serial.solve(&work, &cfg);
                prop_assert!(
                    batched.statuses[s] == reference.status,
                    "outage {bus}: batched {} vs serial {}",
                    batched.statuses[s],
                    reference.status
                );
                prop_assert!(
                    batched.per_scenario_iterations[s] == reference.iterations,
                    "outage {bus}: batched {} iterations vs serial {}",
                    batched.per_scenario_iterations[s],
                    reference.iterations
                );
                let mut dead = vec![false; n];
                for &b in delta.isolated() {
                    dead[b] = true;
                }
                for (bu, &is_dead) in dead.iter().enumerate() {
                    if is_dead {
                        prop_assert!(
                            batched.v[s][bu] == Complex::ZERO
                                && batched.j[s][bu] == Complex::ZERO,
                            "outage {bus}: de-energized bus {bu} not zeroed"
                        );
                    } else {
                        let d = (batched.v[s][bu] - reference.v[bu]).abs();
                        prop_assert!(
                            d < 1e-9,
                            "outage {bus} bus {bu}: batched vs serial differ by {d:.3e} V"
                        );
                    }
                }
                delta.revert(&mut work).expect("revert");
            }
            prop_assert!(
                fingerprint(&work) == fingerprint(&net),
                "per-outage revert cycle must restore the network bitwise"
            );
            Ok(())
        },
    );
}
