//! End-to-end pipeline test spanning every crate: generate a network,
//! round-trip it through the .grid format, solve with all three solvers,
//! and validate physics and cross-solver agreement.

use fbs::{GpuSolver, MulticoreSolver, SerialSolver, SolverConfig};
use powergrid::gen::{balanced_binary, GenSpec};
use powergrid::gridfile::{parse_grid, write_grid};
use rng::rngs::StdRng;
use rng::SeedableRng;
use simt::{Device, DeviceProps, HostProps};

#[test]
fn generate_serialize_solve_validate() {
    let mut rng = StdRng::seed_from_u64(424242);
    let net = balanced_binary(2047, &GenSpec::default(), &mut rng);

    // Round-trip through the text format.
    let net = parse_grid(&write_grid(&net)).expect("generated networks serialize cleanly");

    let cfg = SolverConfig::default();
    let serial = SerialSolver::new(HostProps::paper_rig()).solve(&net, &cfg);
    let multicore = MulticoreSolver::new(HostProps::paper_rig(), 4).solve(&net, &cfg);
    let mut gpu_solver = GpuSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2));
    let gpu = gpu_solver.solve(&net, &cfg);

    for (name, res) in [("serial", &serial), ("multicore", &multicore), ("gpu", &gpu)] {
        assert!(res.converged(), "{name} must converge");
        fbs::validate::assert_physical(&net, res, 1e-5);
    }
    assert_eq!(serial.iterations, gpu.iterations);
    assert_eq!(serial.iterations, multicore.iterations);

    for bus in 0..net.num_buses() {
        assert!(
            (serial.v[bus] - gpu.v[bus]).abs() < 1e-6,
            "bus {bus}: serial {:?} vs gpu {:?}",
            serial.v[bus],
            gpu.v[bus]
        );
        assert!((serial.v[bus] - multicore.v[bus]).abs() < 1e-6);
    }
}

#[test]
fn gpu_timeline_accounts_for_the_whole_solve() {
    let mut rng = StdRng::seed_from_u64(7);
    let net = balanced_binary(511, &GenSpec::default(), &mut rng);
    let mut solver = GpuSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2));
    let res = solver.solve(&net, &SolverConfig::default());
    assert!(res.converged());

    // Phase attribution must cover the full timeline (no lost events).
    let timeline_total = solver.device().timeline().total_modeled_us();
    let phase_total = res.timing.total_us();
    assert!(
        (timeline_total - phase_total).abs() < 1e-6 * timeline_total.max(1.0),
        "timeline {timeline_total} µs vs phases {phase_total} µs"
    );

    // The solver's kernels appear on the timeline under their own names.
    let b = solver.device().timeline().breakdown();
    for name in ["fbs_inject", "fbs_backward_combine", "fbs_forward", "segscan_blocks", "reduce"] {
        assert!(b.per_kernel_us.contains_key(name), "missing kernel {name}");
    }
}

#[test]
fn results_are_reproducible_across_runs() {
    let run = || {
        let mut rng = StdRng::seed_from_u64(99);
        let net = balanced_binary(1023, &GenSpec::default(), &mut rng);
        let mut solver = GpuSolver::new(Device::with_workers(DeviceProps::paper_rig(), 4));
        let res = solver.solve(&net, &SolverConfig::default());
        (res.v, res.j, res.iterations, res.timing.total_us())
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "voltages must be bit-identical");
    assert_eq!(a.1, b.1, "currents must be bit-identical");
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3, "modeled time must be deterministic");
}
