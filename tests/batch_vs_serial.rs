//! Batched solves must agree scenario-for-scenario with independent
//! serial solves, on randomised topologies and load sets.

use check::gen::{tuple3, u64_any, usize_in};
use check::{checker, prop_assert, prop_assume, CaseResult};
use fbs::{BatchSolver, SerialSolver, SolverConfig};
use numc::Complex;
use powergrid::gen::{random_tree, GenSpec};
use rng::rngs::StdRng;
use rng::SeedableRng;
use simt::{Device, DeviceProps, HostProps};

#[test]
fn batch_matches_independent_serial_solves() {
    checker("batch_matches_independent_serial_solves").cases(12).run(
        tuple3(usize_in(3..250), usize_in(1..6), u64_any()),
        |&(n, nb, seed)| -> CaseResult {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = random_tree(n, 8, &GenSpec::default(), &mut rng);
            let cfg = SolverConfig::default();

            // Scenarios: scaled copies of the base loading.
            let scales: Vec<f64> = (0..nb).map(|k| 0.5 + 0.2 * k as f64).collect();
            let scenarios: Vec<Vec<Complex>> = scales
                .iter()
                .map(|&sc| net.buses().iter().map(|b| b.load * sc).collect())
                .collect();

            let mut solver = BatchSolver::new(Device::with_workers(DeviceProps::paper_rig(), 2));
            let batch = solver.solve(&net, &scenarios, &cfg);
            prop_assume!(batch.converged());

            let v0 = net.source_voltage().abs();
            let tol_v = cfg.tol_volts(v0);
            for (s, &scale) in scales.iter().enumerate() {
                let mut scaled = net.clone();
                scaled.scale_loads(scale);
                let single = SerialSolver::new(HostProps::paper_rig()).solve(&scaled, &cfg);
                prop_assert!(single.converged());
                for bus in 0..n {
                    prop_assert!(
                        (batch.v[s][bus] - single.v[bus]).abs() < 20.0 * tol_v,
                        "scenario {} bus {}: {:?} vs {:?}",
                        s,
                        bus,
                        batch.v[s][bus],
                        single.v[bus]
                    );
                }
            }
            Ok(())
        },
    );
}
